//===- predictors/Predictor.h - Unified inference backends ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface behind every prediction method of the framework
/// (§3.5): the end-to-end RL policy, the supervised methods that reuse the
/// learned embedding (nearest-neighbor search, decision tree), and the
/// non-learned baselines (stock cost model, random, brute-force oracle).
/// The paper's Fig 3 draws the "learning agent" as a swappable block; this
/// interface is that block, so the serving layer, the evaluator, and the
/// facade can all select a backend per request instead of hard-coding the
/// policy network.
///
/// Backends come in two kinds:
///
///  - Embedding: consume the Code2Vec code vector of each loop (RL, NNS,
///    decision tree). The caller computes embeddings once — batched,
///    through the shared encoder — and the backend maps rows to plans.
///  - Source: need the whole program text (baseline cost model, random,
///    brute-force search) because their answer is not a function of a
///    single loop's embedding.
///
//===----------------------------------------------------------------------===//

#ifndef NV_PREDICTORS_PREDICTOR_H
#define NV_PREDICTORS_PREDICTOR_H

#include "nn/Matrix.h"
#include "target/TargetInfo.h"

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nv {

class ThreadPool;

/// Prediction method selector (the "learning agent" block of Fig 3 is
/// swappable after end-to-end training, §3.5).
enum class PredictMethod {
  Baseline,     ///< Stock cost model (no pragma).
  RL,           ///< Trained PPO policy (greedy).
  NNS,          ///< Nearest neighbor over the learned embedding.
  DecisionTree, ///< CART over the learned embedding.
  Random,       ///< Uniformly random factors.
  BruteForce,   ///< Exhaustive search (oracle).
};

/// Number of PredictMethod values (per-method stats arrays, registries).
constexpr int NumPredictMethods = 6;

/// Stable lowercase name ("rl", "nns", "tree", ...) for CLIs, stats
/// tables, and bench JSON keys.
const char *methodName(PredictMethod Method);

/// Inverse of methodName; nullopt for unknown names.
std::optional<PredictMethod> methodFromName(const std::string &Name);

/// The joint (VF, IF) class id of \p Plan under \p TI's action arrays —
/// the label space the supervised backends are fitted on.
int planToClass(const VectorPlan &Plan, const TargetInfo &TI);

/// Inverse of planToClass (out-of-range classes clamp to the last VF row).
VectorPlan classToPlan(int Class, const TargetInfo &TI);

/// Size of the joint class space (|VF actions| * |IF actions|).
int numPlanClasses(const TargetInfo &TI);

/// One inference backend.
class Predictor {
public:
  /// What a backend consumes; decides which plansFor* entry point the
  /// caller must use.
  enum class Kind {
    Embedding, ///< Code vectors, one row per loop (batchable).
    Source,    ///< Whole program text (search / cost-model methods).
  };

  virtual ~Predictor();

  virtual Kind kind() const = 0;

  /// Stable lowercase identifier, matching methodName() of the method the
  /// backend implements.
  virtual std::string name() const = 0;

  /// False until the backend has been fitted (supervised methods before
  /// distillation). Serving an unready backend is a request error, not UB.
  virtual bool ready() const { return true; }

  /// Whether identical inputs always yield identical plans — the licence
  /// for the serving layer to cache results (false for random search).
  virtual bool cacheable() const { return true; }

  /// Embedding kind: the state width this backend wants per row, or 0 for
  /// "whatever the encoder produces". Non-zero only for a policy built
  /// with legality features (codeDim + NumLegalityFeatures); callers that
  /// ran the loop analysis widen rows to this before calling
  /// plansForEmbeddings (bare rows are tolerated — features read as 0).
  virtual int wantsCols() const { return 0; }

  /// Embedding kind: one plan per row of \p States (B x CodeDim). \p Pool
  /// may parallelize the backend's own math; results must not depend on
  /// it. The base implementation asserts (wrong-kind call).
  virtual std::vector<VectorPlan> plansForEmbeddings(const Matrix &States,
                                                     ThreadPool *Pool);

  /// Source kind: one plan per vectorization site of \p Source, in site
  /// order. The base implementation asserts (wrong-kind call).
  virtual std::vector<VectorPlan> plansForSource(const std::string &Source);
};

/// The backend registry: one optional Predictor per PredictMethod. Owns
/// its backends; the serving layer and the evaluator borrow them.
class PredictorSet {
public:
  PredictorSet() = default;
  PredictorSet(PredictorSet &&) = default;
  PredictorSet &operator=(PredictorSet &&) = default;

  void set(PredictMethod Method, std::unique_ptr<Predictor> Backend) {
    Slots[static_cast<size_t>(Method)] = std::move(Backend);
  }

  /// The backend for \p Method, or null when none is registered.
  Predictor *get(PredictMethod Method) const {
    return Slots[static_cast<size_t>(Method)].get();
  }

  /// Number of registered backends.
  size_t size() const;

private:
  std::array<std::unique_ptr<Predictor>, NumPredictMethods> Slots;
};

} // namespace nv

#endif // NV_PREDICTORS_PREDICTOR_H
