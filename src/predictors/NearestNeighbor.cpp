//===- predictors/NearestNeighbor.cpp - NNS over embeddings ----------------===//

#include "predictors/NearestNeighbor.h"

#include "nn/Kernels.h"
#include "support/ThreadPool.h"
#include "support/Wire.h"

#include <algorithm>
#include <cassert>

using namespace nv;

double nv::squaredDistance(const std::vector<double> &A,
                           const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    const double D = A[I] - B[I];
    Sum += D * D;
  }
  return Sum;
}

void NearestNeighborPredictor::add(const std::vector<double> &Embedding,
                                   VectorPlan Label) {
  const int Dim = static_cast<int>(Embedding.size());
  assert((Labels.empty() || Dim == Examples.cols()) && "ragged NNS index");
  Examples.appendRow(Embedding.data(), Dim);
  double Norm = 0.0;
  for (int D = 0; D < Dim; ++D)
    Norm += Embedding[D] * Embedding[D];
  Norms.push_back(Norm);
  Labels.push_back(Label);
}

void NearestNeighborPredictor::clear() {
  Examples.resize(0, 0);
  Norms.clear();
  Labels.clear();
}

VectorPlan
NearestNeighborPredictor::predict(const std::vector<double> &Embedding) {
  assert(!Labels.empty() && "predict() on an empty NNS index");
  QueryBuf.resize(1, static_cast<int>(Embedding.size()));
  std::copy(Embedding.begin(), Embedding.end(), QueryBuf.rowPtr(0));
  std::vector<VectorPlan> Out(1);
  predictBatch(QueryBuf, Out);
  return Out[0];
}

void NearestNeighborPredictor::predictBatch(const Matrix &Queries,
                                            std::vector<VectorPlan> &Out,
                                            ThreadPool *Pool) {
  assert(!Labels.empty() && "predictBatch() on an empty NNS index");
  assert(Queries.cols() == Examples.cols() && "query dimension mismatch");
  const size_t Count = Labels.size();

  // One blocked GEMM answers every query's dot product against every
  // example; squared distance is |e|^2 - 2 q.e up to the per-query
  // constant |q|^2, which cannot change any ordering.
  gemmTBInto(DotsBuf, Queries, Examples, Pool);

  Out.resize(static_cast<size_t>(Queries.rows()));
  auto SelectRow = [&](size_t R) {
    const double *Dots = DotsBuf.rowPtr(static_cast<int>(R));
    // Reusable per-thread selection scratch (rows fan out over the pool).
    static thread_local std::vector<std::pair<double, size_t>> Scored;
    static thread_local std::vector<std::pair<VectorPlan, int>> Votes;
    Scored.clear();
    Scored.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Scored.emplace_back(Norms[I] - 2.0 * Dots[I], I);
    const size_t Keep = std::min<size_t>(static_cast<size_t>(K), Count);
    std::partial_sort(Scored.begin(), Scored.begin() + Keep, Scored.end());

    // Majority vote; nearer examples win ties (scan in distance order).
    Votes.clear();
    for (size_t N = 0; N < Keep; ++N) {
      const VectorPlan &Label = Labels[Scored[N].second];
      bool Found = false;
      for (auto &[Plan, CountFor] : Votes) {
        if (Plan == Label) {
          ++CountFor;
          Found = true;
          break;
        }
      }
      if (!Found)
        Votes.emplace_back(Label, 1);
    }
    VectorPlan Best = Votes.front().first;
    int BestCount = Votes.front().second;
    for (const auto &[Plan, CountFor] : Votes) {
      if (CountFor > BestCount) {
        Best = Plan;
        BestCount = CountFor;
      }
    }
    Out[R] = Best;
  };

  if (Pool && Queries.rows() > 1) {
    Pool->parallelFor(0, static_cast<size_t>(Queries.rows()), SelectRow);
    return;
  }
  for (int R = 0; R < Queries.rows(); ++R)
    SelectRow(static_cast<size_t>(R));
}

void NearestNeighborPredictor::serialize(std::vector<char> &Out) const {
  wire::appendValue(Out, static_cast<int32_t>(K));
  const uint32_t Dim = static_cast<uint32_t>(dimension());
  wire::appendValue(Out, Dim);
  wire::appendValue(Out, static_cast<uint64_t>(Labels.size()));
  for (size_t I = 0; I < Labels.size(); ++I) {
    wire::appendBytes(Out, Examples.rowPtr(static_cast<int>(I)),
                      Dim * sizeof(double));
    wire::appendValue(Out, static_cast<int32_t>(Labels[I].VF));
    wire::appendValue(Out, static_cast<int32_t>(Labels[I].IF));
  }
}

bool NearestNeighborPredictor::deserialize(const char *Data, size_t Size,
                                           std::string *Error) {
  auto Fail = [Error](const char *Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  size_t Offset = 0;
  int32_t NewK = 0;
  uint32_t Dim = 0;
  uint64_t Count = 0;
  if (!wire::readValue(Data, Size, Offset, NewK) ||
      !wire::readValue(Data, Size, Offset, Dim) ||
      !wire::readValue(Data, Size, Offset, Count))
    return Fail("NNS section: truncated header");
  if (NewK < 1)
    return Fail("NNS section: invalid neighbor count");
  // A claimed example count must fit in the remaining bytes BEFORE any
  // allocation: a corrupt count must return false, not throw bad_alloc.
  const size_t ExampleBytes =
      static_cast<size_t>(Dim) * sizeof(double) + 2 * sizeof(int32_t);
  if (Count > (Size - Offset) / ExampleBytes)
    return Fail("NNS section: example count exceeds payload");
  Matrix NewExamples(static_cast<int>(Count), static_cast<int>(Dim));
  std::vector<double> NewNorms;
  std::vector<VectorPlan> NewLabels;
  NewNorms.reserve(Count);
  NewLabels.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I) {
    double *Row = NewExamples.rowPtr(static_cast<int>(I));
    int32_t VF = 0, IF = 0;
    if (!wire::readBytes(Data, Size, Offset, Row, Dim * sizeof(double)) ||
        !wire::readValue(Data, Size, Offset, VF) ||
        !wire::readValue(Data, Size, Offset, IF))
      return Fail("NNS section: truncated example");
    double Norm = 0.0;
    for (uint32_t D = 0; D < Dim; ++D)
      Norm += Row[D] * Row[D];
    NewNorms.push_back(Norm);
    NewLabels.push_back({VF, IF});
  }
  if (Offset != Size)
    return Fail("NNS section: trailing bytes");
  K = NewK;
  Examples = std::move(NewExamples);
  Norms = std::move(NewNorms);
  Labels = std::move(NewLabels);
  return true;
}
