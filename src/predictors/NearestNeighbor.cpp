//===- predictors/NearestNeighbor.cpp - NNS over embeddings ----------------===//

#include "predictors/NearestNeighbor.h"

#include "support/Wire.h"

#include <algorithm>
#include <cassert>

using namespace nv;

double nv::squaredDistance(const std::vector<double> &A,
                           const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    const double D = A[I] - B[I];
    Sum += D * D;
  }
  return Sum;
}

void NearestNeighborPredictor::add(std::vector<double> Embedding,
                                   VectorPlan Label) {
  Examples.push_back({std::move(Embedding), Label});
}

VectorPlan
NearestNeighborPredictor::predict(const std::vector<double> &Embedding) const {
  assert(!Examples.empty() && "predict() on an empty NNS index");
  // Collect the K nearest by partial sort of distances.
  std::vector<std::pair<double, size_t>> Dist;
  Dist.reserve(Examples.size());
  for (size_t I = 0; I < Examples.size(); ++I)
    Dist.emplace_back(squaredDistance(Embedding, Examples[I].Embedding), I);
  const size_t Keep = std::min<size_t>(static_cast<size_t>(K), Dist.size());
  std::partial_sort(Dist.begin(), Dist.begin() + Keep, Dist.end());

  // Majority vote; nearer examples win ties (scan in distance order).
  std::vector<std::pair<VectorPlan, int>> Votes;
  for (size_t N = 0; N < Keep; ++N) {
    const VectorPlan &Label = Examples[Dist[N].second].Label;
    bool Found = false;
    for (auto &[Plan, Count] : Votes) {
      if (Plan == Label) {
        ++Count;
        Found = true;
        break;
      }
    }
    if (!Found)
      Votes.emplace_back(Label, 1);
  }
  VectorPlan Best = Votes.front().first;
  int BestCount = Votes.front().second;
  for (const auto &[Plan, Count] : Votes) {
    if (Count > BestCount) {
      Best = Plan;
      BestCount = Count;
    }
  }
  return Best;
}

void NearestNeighborPredictor::serialize(std::vector<char> &Out) const {
  wire::appendValue(Out, static_cast<int32_t>(K));
  const uint32_t Dim =
      Examples.empty() ? 0u
                       : static_cast<uint32_t>(Examples[0].Embedding.size());
  wire::appendValue(Out, Dim);
  wire::appendValue(Out, static_cast<uint64_t>(Examples.size()));
  for (const Example &E : Examples) {
    assert(E.Embedding.size() == Dim && "ragged NNS index");
    wire::appendBytes(Out, E.Embedding.data(), Dim * sizeof(double));
    wire::appendValue(Out, static_cast<int32_t>(E.Label.VF));
    wire::appendValue(Out, static_cast<int32_t>(E.Label.IF));
  }
}

bool NearestNeighborPredictor::deserialize(const char *Data, size_t Size,
                                           std::string *Error) {
  auto Fail = [Error](const char *Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  size_t Offset = 0;
  int32_t NewK = 0;
  uint32_t Dim = 0;
  uint64_t Count = 0;
  if (!wire::readValue(Data, Size, Offset, NewK) ||
      !wire::readValue(Data, Size, Offset, Dim) ||
      !wire::readValue(Data, Size, Offset, Count))
    return Fail("NNS section: truncated header");
  if (NewK < 1)
    return Fail("NNS section: invalid neighbor count");
  // A claimed example count must fit in the remaining bytes BEFORE any
  // allocation: a corrupt count must return false, not throw bad_alloc.
  const size_t ExampleBytes =
      static_cast<size_t>(Dim) * sizeof(double) + 2 * sizeof(int32_t);
  if (Count > (Size - Offset) / ExampleBytes)
    return Fail("NNS section: example count exceeds payload");
  std::vector<Example> NewExamples;
  NewExamples.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I) {
    Example E;
    E.Embedding.resize(Dim);
    int32_t VF = 0, IF = 0;
    if (!wire::readBytes(Data, Size, Offset, E.Embedding.data(),
                         Dim * sizeof(double)) ||
        !wire::readValue(Data, Size, Offset, VF) ||
        !wire::readValue(Data, Size, Offset, IF))
      return Fail("NNS section: truncated example");
    E.Label = {VF, IF};
    NewExamples.push_back(std::move(E));
  }
  if (Offset != Size)
    return Fail("NNS section: trailing bytes");
  K = NewK;
  Examples = std::move(NewExamples);
  return true;
}
