//===- predictors/NearestNeighbor.cpp - NNS over embeddings ----------------===//

#include "predictors/NearestNeighbor.h"

#include <algorithm>
#include <cassert>

using namespace nv;

double nv::squaredDistance(const std::vector<double> &A,
                           const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    const double D = A[I] - B[I];
    Sum += D * D;
  }
  return Sum;
}

void NearestNeighborPredictor::add(std::vector<double> Embedding,
                                   VectorPlan Label) {
  Examples.push_back({std::move(Embedding), Label});
}

VectorPlan
NearestNeighborPredictor::predict(const std::vector<double> &Embedding) const {
  assert(!Examples.empty() && "predict() on an empty NNS index");
  // Collect the K nearest by partial sort of distances.
  std::vector<std::pair<double, size_t>> Dist;
  Dist.reserve(Examples.size());
  for (size_t I = 0; I < Examples.size(); ++I)
    Dist.emplace_back(squaredDistance(Embedding, Examples[I].Embedding), I);
  const size_t Keep = std::min<size_t>(static_cast<size_t>(K), Dist.size());
  std::partial_sort(Dist.begin(), Dist.begin() + Keep, Dist.end());

  // Majority vote; nearer examples win ties (scan in distance order).
  std::vector<std::pair<VectorPlan, int>> Votes;
  for (size_t N = 0; N < Keep; ++N) {
    const VectorPlan &Label = Examples[Dist[N].second].Label;
    bool Found = false;
    for (auto &[Plan, Count] : Votes) {
      if (Plan == Label) {
        ++Count;
        Found = true;
        break;
      }
    }
    if (!Found)
      Votes.emplace_back(Label, 1);
  }
  VectorPlan Best = Votes.front().first;
  int BestCount = Votes.front().second;
  for (const auto &[Plan, Count] : Votes) {
    if (Count > BestCount) {
      Best = Plan;
      BestCount = Count;
    }
  }
  return Best;
}
