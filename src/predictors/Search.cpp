//===- predictors/Search.cpp - Brute-force and random search ---------------===//

#include "predictors/Search.h"

using namespace nv;

BruteForceResult nv::bruteForceSearch(VectorizationEnv &Env, size_t Index,
                                      int Passes) {
  const TargetInfo &TI = Env.compiler().target();
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  const size_t NumSites = Env.sample(Index).Sites.size();

  BruteForceResult Result;
  Result.Plans.assign(NumSites, VectorPlan{1, 1});
  Result.Cycles = Env.cyclesWith(Index, Result.Plans);
  ++Result.Evaluations;

  for (int Pass = 0; Pass < Passes; ++Pass) {
    bool Improved = false;
    for (size_t Site = 0; Site < NumSites; ++Site) {
      for (int VF : VFs) {
        for (int IF : IFs) {
          std::vector<VectorPlan> Candidate = Result.Plans;
          Candidate[Site] = {VF, IF};
          const double Cycles = Env.cyclesWith(Index, Candidate);
          ++Result.Evaluations;
          if (Cycles < Result.Cycles) {
            Result.Cycles = Cycles;
            Result.Plans = Candidate;
            Improved = true;
          }
        }
      }
    }
    if (!Improved)
      break;
  }
  return Result;
}

std::vector<VectorPlan> nv::randomPlans(const VectorizationEnv &Env,
                                        size_t Index, RNG &Rng) {
  const TargetInfo &TI = Env.compiler().target();
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  std::vector<VectorPlan> Plans;
  for (size_t S = 0; S < Env.sample(Index).Sites.size(); ++S)
    Plans.push_back({static_cast<int>(VFs[Rng.nextBounded(VFs.size())]),
                     static_cast<int>(IFs[Rng.nextBounded(IFs.size())])});
  return Plans;
}
