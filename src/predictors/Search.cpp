//===- predictors/Search.cpp - Brute-force and random search ---------------===//

#include "predictors/Search.h"

using namespace nv;

BruteForceResult nv::bruteForceSearch(VectorizationEnv &Env, size_t Index,
                                      int Passes) {
  const TargetInfo &TI = Env.compiler().target();
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  const size_t NumSites = Env.sample(Index).Sites.size();

  BruteForceResult Result;
  Result.Plans.assign(NumSites, VectorPlan{1, 1});
  Result.Cycles = Env.cyclesWith(Index, Result.Plans);
  ++Result.Evaluations;

  for (int Pass = 0; Pass < Passes; ++Pass) {
    bool Improved = false;
    for (size_t Site = 0; Site < NumSites; ++Site) {
      const LegalitySummary &Legal = Env.legality(Index, Site);
      for (int VF : VFs) {
        for (int IF : IFs) {
          if (!Legal.isLegal({VF, IF}, TI))
            continue;
          std::vector<VectorPlan> Candidate = Result.Plans;
          Candidate[Site] = {VF, IF};
          const double Cycles = Env.cyclesWith(Index, Candidate);
          ++Result.Evaluations;
          if (Cycles < Result.Cycles) {
            Result.Cycles = Cycles;
            Result.Plans = Candidate;
            Improved = true;
          }
        }
      }
    }
    if (!Improved)
      break;
  }
  return Result;
}

std::vector<VectorPlan> nv::randomPlans(const VectorizationEnv &Env,
                                        size_t Index, RNG &Rng) {
  const TargetInfo &TI = Env.compiler().target();
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  std::vector<VectorPlan> Plans;
  for (size_t S = 0; S < Env.sample(Index).Sites.size(); ++S) {
    // Uniform over the site's *legal* grid: random search competes on the
    // same action set the other methods see (an illegal draw would be
    // silently clamped by the compiler anyway, skewing the distribution).
    const PlanMask &Mask = Env.actionMask(Index, S);
    std::vector<VectorPlan> Legal;
    for (size_t V = 0; V < VFs.size(); ++V)
      for (size_t I = 0; I < IFs.size(); ++I)
        if (Mask.empty() || Mask.legal(static_cast<int>(V), static_cast<int>(I)))
          Legal.push_back({VFs[V], IFs[I]});
    Plans.push_back(Legal[Rng.nextBounded(Legal.size())]);
  }
  return Plans;
}
