//===- predictors/NearestNeighbor.h - NNS over embeddings -------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nearest-neighbor search predictor (§3.5): after the RL agent has
/// trained the embedding end-to-end, the agent block is swapped for a
/// k-NN lookup over (embedding, brute-force-optimal factors) pairs. The
/// paper reports NNS at 2.65x over baseline — nearly matching RL — which
/// shows the learned embedding clusters similar loops together.
///
/// The index is a real index, not a bag of vectors: examples live in one
/// contiguous (count x dim) matrix with their squared norms precomputed
/// at insertion, and a query batch runs as ONE blocked GEMM
/// (queries x examples^T, via the nn/Kernels.h kernels) followed by a
/// per-query top-K selection over norm - 2*dot — the squared distance
/// minus the query's own norm, which is constant per query and cannot
/// change the ordering. That replaces the per-query linear scan (one
/// scalar distance loop and three heap allocations per query) the
/// predictor launched with.
///
/// Determinism: the GEMM is bit-identical at any pool size (kernel
/// contract), selection is per-row serial with ties broken toward the
/// lower example index, and example order is insertion order — so batch
/// results never depend on the pool.
///
//===----------------------------------------------------------------------===//

#ifndef NV_PREDICTORS_NEARESTNEIGHBOR_H
#define NV_PREDICTORS_NEARESTNEIGHBOR_H

#include "nn/Matrix.h"
#include "target/CostModel.h"

#include <string>
#include <vector>

namespace nv {

class ThreadPool;

/// k-nearest-neighbor classifier from embedding vectors to (VF, IF).
class NearestNeighborPredictor {
public:
  explicit NearestNeighborPredictor(int K = 1) : K(K) {}

  /// Adds one labeled example (appends a row to the index and its
  /// precomputed norm; amortized O(dim)).
  void add(const std::vector<double> &Embedding, VectorPlan Label);

  /// Drops every example (e.g. when the embedding that produced them is
  /// replaced by NeuroVectorizer::load()).
  void clear();

  size_t size() const { return Labels.size(); }
  int neighbors() const { return K; }

  /// Embedding width of the indexed examples (0 when empty). The model
  /// loader cross-checks it against the embedding dimension.
  size_t dimension() const {
    return Labels.empty() ? 0 : static_cast<size_t>(Examples.cols());
  }

  /// Majority label among the K nearest examples (L2 distance); ties
  /// resolve toward the nearer example, then the lower index. Convenience
  /// wrapper over predictBatch for one query.
  VectorPlan predict(const std::vector<double> &Embedding);

  /// One plan per row of \p Queries (batch x dim): one GEMM against the
  /// example matrix, then per-row selection (parallel over rows on
  /// \p Pool; results do not depend on it). Reuses internal scratch, so
  /// concurrent predictBatch calls on one predictor are not safe — the
  /// serving layer already serializes backend calls under its model lock.
  void predictBatch(const Matrix &Queries, std::vector<VectorPlan> &Out,
                    ThreadPool *Pool = nullptr);

  /// Appends the fitted index (K, examples) to \p Out — the payload of a
  /// model-file v3 'SNNS' section. Byte-stable for identical indexes, so
  /// distillation determinism is checkable by comparing buffers.
  void serialize(std::vector<char> &Out) const;

  /// Replaces this index with the one serialized in \p Data. All-or-
  /// nothing: on a malformed payload the current index is untouched,
  /// false is returned, and \p Error (if non-null) describes the problem.
  bool deserialize(const char *Data, size_t Size, std::string *Error);

private:
  int K;
  Matrix Examples;               ///< (count x dim), insertion order.
  std::vector<double> Norms;     ///< Squared norm per example row.
  std::vector<VectorPlan> Labels; ///< Label per example row.

  Matrix QueryBuf; ///< 1 x dim staging for predict().
  Matrix DotsBuf;  ///< (batch x count) GEMM output scratch.
};

/// Squared Euclidean distance (the reference the GEMM path is tested
/// against; shared with the tests).
double squaredDistance(const std::vector<double> &A,
                       const std::vector<double> &B);

} // namespace nv

#endif // NV_PREDICTORS_NEARESTNEIGHBOR_H
