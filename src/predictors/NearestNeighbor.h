//===- predictors/NearestNeighbor.h - NNS over embeddings -------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nearest-neighbor search predictor (§3.5): after the RL agent has
/// trained the embedding end-to-end, the agent block is swapped for a
/// k-NN lookup over (embedding, brute-force-optimal factors) pairs. The
/// paper reports NNS at 2.65x over baseline — nearly matching RL — which
/// shows the learned embedding clusters similar loops together.
///
//===----------------------------------------------------------------------===//

#ifndef NV_PREDICTORS_NEARESTNEIGHBOR_H
#define NV_PREDICTORS_NEARESTNEIGHBOR_H

#include "target/CostModel.h"

#include <string>
#include <vector>

namespace nv {

/// k-nearest-neighbor classifier from embedding vectors to (VF, IF).
class NearestNeighborPredictor {
public:
  explicit NearestNeighborPredictor(int K = 1) : K(K) {}

  /// Adds one labeled example.
  void add(std::vector<double> Embedding, VectorPlan Label);

  /// Drops every example (e.g. when the embedding that produced them is
  /// replaced by NeuroVectorizer::load()).
  void clear() { Examples.clear(); }

  size_t size() const { return Examples.size(); }
  int neighbors() const { return K; }

  /// Embedding width of the indexed examples (0 when empty). The model
  /// loader cross-checks it against the embedding dimension.
  size_t dimension() const {
    return Examples.empty() ? 0 : Examples[0].Embedding.size();
  }

  /// Majority label among the K nearest examples (L2 distance); ties
  /// resolve toward the nearer example.
  VectorPlan predict(const std::vector<double> &Embedding) const;

  /// Appends the fitted index (K, examples) to \p Out — the payload of a
  /// model-file v3 'SNNS' section. Byte-stable for identical indexes, so
  /// distillation determinism is checkable by comparing buffers.
  void serialize(std::vector<char> &Out) const;

  /// Replaces this index with the one serialized in \p Data. All-or-
  /// nothing: on a malformed payload the current index is untouched,
  /// false is returned, and \p Error (if non-null) describes the problem.
  bool deserialize(const char *Data, size_t Size, std::string *Error);

private:
  struct Example {
    std::vector<double> Embedding;
    VectorPlan Label;
  };
  int K;
  std::vector<Example> Examples;
};

/// Squared Euclidean distance (shared with the tests).
double squaredDistance(const std::vector<double> &A,
                       const std::vector<double> &B);

} // namespace nv

#endif // NV_PREDICTORS_NEARESTNEIGHBOR_H
