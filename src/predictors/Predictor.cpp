//===- predictors/Predictor.cpp - Unified inference backends ---------------===//

#include "predictors/Predictor.h"

#include <cassert>

using namespace nv;

Predictor::~Predictor() = default;

const char *nv::methodName(PredictMethod Method) {
  switch (Method) {
  case PredictMethod::Baseline:
    return "baseline";
  case PredictMethod::RL:
    return "rl";
  case PredictMethod::NNS:
    return "nns";
  case PredictMethod::DecisionTree:
    return "tree";
  case PredictMethod::Random:
    return "random";
  case PredictMethod::BruteForce:
    return "bruteforce";
  }
  return "unknown";
}

std::optional<PredictMethod> nv::methodFromName(const std::string &Name) {
  for (int I = 0; I < NumPredictMethods; ++I) {
    const PredictMethod M = static_cast<PredictMethod>(I);
    if (Name == methodName(M))
      return M;
  }
  return std::nullopt;
}

int nv::planToClass(const VectorPlan &Plan, const TargetInfo &TI) {
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  int VFIdx = 0, IFIdx = 0;
  for (size_t I = 0; I < VFs.size(); ++I)
    if (VFs[I] == Plan.VF)
      VFIdx = static_cast<int>(I);
  for (size_t I = 0; I < IFs.size(); ++I)
    if (IFs[I] == Plan.IF)
      IFIdx = static_cast<int>(I);
  return VFIdx * static_cast<int>(IFs.size()) + IFIdx;
}

VectorPlan nv::classToPlan(int Class, const TargetInfo &TI) {
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  const int NumIF = static_cast<int>(IFs.size());
  VectorPlan Plan;
  Plan.VF = VFs[std::min<size_t>(Class / NumIF, VFs.size() - 1)];
  Plan.IF = IFs[Class % NumIF];
  return Plan;
}

int nv::numPlanClasses(const TargetInfo &TI) {
  return static_cast<int>(TI.vfActions().size() * TI.ifActions().size());
}

std::vector<VectorPlan> Predictor::plansForEmbeddings(const Matrix &,
                                                      ThreadPool *) {
  assert(false && "source-kind backend queried with embeddings");
  return {};
}

std::vector<VectorPlan> Predictor::plansForSource(const std::string &) {
  assert(false && "embedding-kind backend queried with a source");
  return {};
}

size_t PredictorSet::size() const {
  size_t Count = 0;
  for (const auto &Slot : Slots)
    Count += Slot != nullptr;
  return Count;
}
