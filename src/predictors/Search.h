//===- predictors/Search.h - Brute-force and random search ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two non-learned baselines of the paper's framework:
///
///  - Brute-force search: tries every (VF, IF) pair per loop and keeps the
///    fastest. This is the oracle Fig 7 compares against ("only 3% worse
///    than the brute-force solution") and the labeler for the supervised
///    methods (NNS, decision trees) — §2.3 and §3.5.
///  - Random search: a uniformly random factor assignment. The paper
///    reports it "performed much worse than the baseline", evidence that
///    the RL policy learned structure rather than luck.
///
//===----------------------------------------------------------------------===//

#ifndef NV_PREDICTORS_SEARCH_H
#define NV_PREDICTORS_SEARCH_H

#include "rl/Env.h"
#include "support/RNG.h"
#include "target/CostModel.h"

#include <vector>

namespace nv {

/// Result of a brute-force sweep over one environment sample.
struct BruteForceResult {
  std::vector<VectorPlan> Plans; ///< Best factors per site.
  double Cycles = 0.0;           ///< Program cycles under Plans.
  long long Evaluations = 0;     ///< Number of compile+run evaluations.
};

/// Exhaustively searches the (VF, IF) grid per vectorization site of
/// sample \p Index. Multi-loop programs use coordinate descent (each site
/// swept with the others held at their incumbent), \p Passes times —
/// exact for single-loop programs, the common case in the dataset.
BruteForceResult bruteForceSearch(VectorizationEnv &Env, size_t Index,
                                  int Passes = 2);

/// A uniformly random plan per site of sample \p Index.
std::vector<VectorPlan> randomPlans(const VectorizationEnv &Env,
                                    size_t Index, RNG &Rng);

} // namespace nv

#endif // NV_PREDICTORS_SEARCH_H
