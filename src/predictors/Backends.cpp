//===- predictors/Backends.cpp - Concrete Predictor backends ---------------===//

#include "predictors/Backends.h"

#include "predictors/Search.h"
#include "rl/Env.h"
#include "rl/Policy.h"
#include "rl/StateFeatures.h"
#include "sim/Compiler.h"

#include <cassert>

using namespace nv;

int PolicyBackend::wantsCols() const { return Pol.inputDim(); }

std::vector<VectorPlan> PolicyBackend::plansForEmbeddings(const Matrix &States,
                                                          ThreadPool *Pool) {
  // A feature-widened policy fed bare code embeddings gets zero-filled
  // legality columns (callers that ran the analysis pre-widen instead,
  // which passes through untouched).
  const Matrix &In =
      widenStates(States, Pol.inputDim(), nullptr, 0, TI, WideBuf);
  Pol.forward(In, Pool, /*ForBackward=*/false);
  std::vector<VectorPlan> Plans(States.rows());
  for (int Row = 0; Row < States.rows(); ++Row)
    Plans[Row] = Pol.toPlan(Pol.greedyAction(Row), TI);
  return Plans;
}

std::vector<VectorPlan> NNSBackend::plansForEmbeddings(const Matrix &States,
                                                       ThreadPool *Pool) {
  assert(ready() && "NNS backend queried before distillation");
  // The whole batch goes through the index as one GEMM against the
  // example matrix — no per-row embedding copies, no linear scalar scan.
  std::vector<VectorPlan> Plans;
  Index.predictBatch(States, Plans, Pool);
  return Plans;
}

std::vector<VectorPlan> TreeBackend::plansForEmbeddings(const Matrix &States,
                                                        ThreadPool *) {
  assert(ready() && "tree backend queried before distillation");
  std::vector<VectorPlan> Plans(States.rows());
  std::vector<double> Row(States.cols());
  for (int R = 0; R < States.rows(); ++R) {
    Row.assign(States.rowPtr(R), States.rowPtr(R) + States.cols());
    Plans[R] = classToPlan(Tree.predict(Row), TI);
  }
  return Plans;
}

namespace {

/// A one-program scratch environment over the query source. Every
/// source-kind call gets its own, so the backends are thread-safe and the
/// analysis caching of the shared environments is never perturbed.
VectorizationEnv scratchEnv(const TargetInfo &TI, const MachineConfig &MC,
                            const PathContextConfig &Paths,
                            const std::string &Source) {
  VectorizationEnv Env(SimCompiler(TI, MC), Paths);
  const bool Added = Env.addProgram("query", Source);
  assert(Added && "source-kind backend requires a program with loops");
  (void)Added;
  return Env;
}

} // namespace

std::vector<VectorPlan>
BaselineBackend::plansForSource(const std::string &Source) {
  VectorizationEnv Env = scratchEnv(TI, Machine, Paths, Source);
  CompileResult R = Env.compiler().compileBaseline(
      const_cast<Program &>(*Env.sample(0).Prog));
  std::vector<VectorPlan> Plans;
  for (const CompiledLoop &L : R.Loops)
    Plans.push_back(L.Effective);
  return Plans;
}

std::vector<VectorPlan>
RandomBackend::plansForSource(const std::string &Source) {
  VectorizationEnv Env = scratchEnv(TI, Machine, Paths, Source);
  std::lock_guard<std::mutex> Lock(Mutex);
  return randomPlans(Env, 0, Rng);
}

std::vector<VectorPlan>
BruteForceBackend::plansForSource(const std::string &Source) {
  VectorizationEnv Env = scratchEnv(TI, Machine, Paths, Source);
  return bruteForceSearch(Env, 0, Passes).Plans;
}
