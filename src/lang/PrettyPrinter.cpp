//===- lang/PrettyPrinter.cpp - Render AST back to source -----------------===//

#include "lang/PrettyPrinter.h"

#include <cassert>
#include <sstream>

using namespace nv;

namespace {

/// Stateful printer accumulating into a string stream.
class PrinterImpl {
public:
  std::string str() const { return OS.str(); }

  void printExprNode(const Expr &E, int ParentPrec);
  void printStmtNode(const Stmt &S, int Indent);
  void printProgramNode(const Program &P);

private:
  void indent(int Level) {
    for (int I = 0; I < Level; ++I)
      OS << "  ";
  }
  static int precedenceOf(BinaryOp Op);

  std::ostringstream OS;
};

} // namespace

int PrinterImpl::precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LOr:
    return 1;
  case BinaryOp::LAnd:
    return 2;
  case BinaryOp::Or:
    return 3;
  case BinaryOp::Xor:
    return 4;
  case BinaryOp::And:
    return 5;
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return 6;
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
    return 7;
  case BinaryOp::Shl:
  case BinaryOp::Shr:
    return 8;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 9;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return 10;
  }
  return 0;
}

void PrinterImpl::printExprNode(const Expr &E, int ParentPrec) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    OS << static_cast<const IntLit &>(E).Value;
    return;
  case ExprKind::FloatLit: {
    std::ostringstream Tmp;
    Tmp << static_cast<const FloatLit &>(E).Value;
    std::string Text = Tmp.str();
    OS << Text;
    // Ensure it re-lexes as a float literal.
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos)
      OS << ".0";
    return;
  }
  case ExprKind::VarRef:
    OS << static_cast<const VarRef &>(E).Name;
    return;
  case ExprKind::ArrayRef: {
    const auto &Ref = static_cast<const ArrayRef &>(E);
    OS << Ref.Name;
    for (const auto &Index : Ref.Indices) {
      OS << '[';
      printExprNode(*Index, 0);
      OS << ']';
    }
    return;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    switch (U.Op) {
    case UnaryOp::Neg:
      OS << '-';
      break;
    case UnaryOp::Not:
      OS << '!';
      break;
    case UnaryOp::BitNot:
      OS << '~';
      break;
    }
    OS << '(';
    printExprNode(*U.Sub, 0);
    OS << ')';
    return;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    const int Prec = precedenceOf(B.Op);
    const bool NeedParens = Prec < ParentPrec;
    if (NeedParens)
      OS << '(';
    printExprNode(*B.LHS, Prec);
    OS << ' ' << binaryOpSpelling(B.Op) << ' ';
    printExprNode(*B.RHS, Prec + 1);
    if (NeedParens)
      OS << ')';
    return;
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    if (ParentPrec > 0)
      OS << '(';
    printExprNode(*T.Cond, 1);
    OS << " ? ";
    printExprNode(*T.Then, 0);
    OS << " : ";
    printExprNode(*T.Else, 0);
    if (ParentPrec > 0)
      OS << ')';
    return;
  }
  case ExprKind::Cast: {
    const auto &C = static_cast<const CastExpr &>(E);
    OS << '(' << typeName(C.Ty) << ") ";
    OS << '(';
    printExprNode(*C.Sub, 0);
    OS << ')';
    return;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    OS << C.Callee << '(';
    for (size_t I = 0; I < C.Args.size(); ++I) {
      if (I != 0)
        OS << ", ";
      printExprNode(*C.Args[I], 0);
    }
    OS << ')';
    return;
  }
  }
  assert(false && "covered switch");
}

void PrinterImpl::printStmtNode(const Stmt &S, int Indent) {
  switch (S.kind()) {
  case StmtKind::Block: {
    const auto &B = static_cast<const BlockStmt &>(S);
    OS << "{\n";
    for (const auto &Child : B.Stmts)
      printStmtNode(*Child, Indent + 1);
    indent(Indent);
    OS << "}";
    return;
  }
  case StmtKind::Decl: {
    const auto &D = static_cast<const DeclStmt &>(S);
    indent(Indent);
    OS << typeName(D.Ty) << ' ' << D.Name;
    if (D.Init) {
      OS << " = ";
      printExprNode(*D.Init, 0);
    }
    OS << ";\n";
    return;
  }
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    indent(Indent);
    printExprNode(*A.LValue, 0);
    switch (A.Op) {
    case AssignOp::Assign:
      OS << " = ";
      break;
    case AssignOp::AddAssign:
      OS << " += ";
      break;
    case AssignOp::SubAssign:
      OS << " -= ";
      break;
    case AssignOp::MulAssign:
      OS << " *= ";
      break;
    }
    printExprNode(*A.RHS, 0);
    OS << ";\n";
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    if (F.Pragma) {
      indent(Indent);
      OS << printPragma(*F.Pragma) << '\n';
    }
    indent(Indent);
    OS << "for (";
    if (F.DeclaresIndex)
      OS << "int ";
    OS << F.IndexVar << " = ";
    printExprNode(*F.Init, 0);
    OS << "; " << F.IndexVar
       << (F.Cond == ForStmt::CondKind::LT ? " < " : " <= ");
    printExprNode(*F.Bound, 0);
    OS << "; " << F.IndexVar;
    if (F.Step == 1)
      OS << "++";
    else
      OS << " += " << F.Step;
    OS << ") ";
    printStmtNode(*F.Body, Indent);
    OS << "\n";
    return;
  }
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    indent(Indent);
    OS << "if (";
    printExprNode(*I.Cond, 0);
    OS << ") ";
    printStmtNode(*I.Then, Indent);
    if (I.Else) {
      OS << " else ";
      printStmtNode(*I.Else, Indent);
    }
    OS << "\n";
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    indent(Indent);
    OS << "return";
    if (R.Value) {
      OS << ' ';
      printExprNode(*R.Value, 0);
    }
    OS << ";\n";
    return;
  }
  }
  assert(false && "covered switch");
}

void PrinterImpl::printProgramNode(const Program &P) {
  for (const VarDecl &G : P.Globals) {
    OS << typeName(G.Ty) << ' ' << G.Name;
    for (long long D : G.Dims)
      OS << '[' << D << ']';
    if (G.Init && !G.isArray()) {
      OS << " = ";
      if (isFloatTy(G.Ty))
        OS << *G.Init;
      else
        OS << static_cast<long long>(*G.Init);
    }
    OS << ";\n";
  }
  if (!P.Globals.empty())
    OS << '\n';
  for (const Function &F : P.Functions) {
    OS << (F.IsVoid ? "void" : typeName(F.RetTy)) << ' ' << F.Name << "() ";
    printStmtNode(*F.Body, 0);
    OS << "\n";
  }
}

std::string nv::printProgram(const Program &P) {
  PrinterImpl Printer;
  Printer.printProgramNode(P);
  return Printer.str();
}

std::string nv::printStmt(const Stmt &S, int Indent) {
  PrinterImpl Printer;
  Printer.printStmtNode(S, Indent);
  return Printer.str();
}

std::string nv::printExpr(const Expr &E) {
  PrinterImpl Printer;
  Printer.printExprNode(E, 0);
  return Printer.str();
}

std::string nv::printPragma(const VectorPragma &Pragma) {
  return "#pragma clang loop vectorize_width(" + std::to_string(Pragma.VF) +
         ") interleave_count(" + std::to_string(Pragma.IF) + ")";
}
