//===- lang/Lexer.h - LoopLang lexer ----------------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for LoopLang. Skips `//` and `/* */` comments and
/// consumes `__attribute__((...))` annotations (the paper's kernels carry
/// alignment/noinline attributes which we accept and ignore).
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_LEXER_H
#define NV_LANG_LEXER_H

#include "lang/Token.h"

#include <vector>

namespace nv {

/// Tokenizes a LoopLang source buffer.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the whole buffer. On a lexical error, appends an End token and
  /// records the message retrievable via \c error().
  std::vector<Token> lexAll();

  /// Returns the first error message, or an empty string on success.
  const std::string &error() const { return ErrorMessage; }

private:
  Token lexToken();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexPragma();
  void skipTrivia();
  bool skipAttribute();

  char peek(int Ahead = 0) const;
  char advance();
  bool match(char Expected);
  Token makeToken(TokenKind Kind, std::string Text = "");
  Token errorToken(const std::string &Message);

  std::string Source;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
  int TokLine = 1;
  int TokCol = 1;
  std::string ErrorMessage;
};

} // namespace nv

#endif // NV_LANG_LEXER_H
