//===- lang/Lexer.cpp - LoopLang lexer ------------------------------------===//

#include "lang/Lexer.h"

#include "support/Interner.h"

#include <cstdlib>
#include <string_view>
#include <utility>

using namespace nv;

namespace {

// Locale-free ASCII classification: the ctype calls are opaque function
// calls on the per-character hot path; LoopLang is ASCII by definition.
inline bool isSpaceAscii(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\f' ||
         C == '\v';
}
inline bool isDigitAscii(char C) { return C >= '0' && C <= '9'; }
inline bool isAlphaAscii(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z');
}
inline bool isIdentAscii(char C) {
  return isAlphaAscii(C) || isDigitAscii(C) || C == '_';
}

} // namespace

const char *nv::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::End:
    return "<eof>";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::Pragma:
    return "#pragma";
  case TokenKind::KwFor:
    return "for";
  case TokenKind::KwIf:
    return "if";
  case TokenKind::KwElse:
    return "else";
  case TokenKind::KwReturn:
    return "return";
  case TokenKind::KwChar:
    return "char";
  case TokenKind::KwShort:
    return "short";
  case TokenKind::KwInt:
    return "int";
  case TokenKind::KwLong:
    return "long";
  case TokenKind::KwFloat:
    return "float";
  case TokenKind::KwDouble:
    return "double";
  case TokenKind::KwUnsigned:
    return "unsigned";
  case TokenKind::KwVoid:
    return "void";
  case TokenKind::LParen:
    return "(";
  case TokenKind::RParen:
    return ")";
  case TokenKind::LBrace:
    return "{";
  case TokenKind::RBrace:
    return "}";
  case TokenKind::LBracket:
    return "[";
  case TokenKind::RBracket:
    return "]";
  case TokenKind::Semi:
    return ";";
  case TokenKind::Comma:
    return ",";
  case TokenKind::Question:
    return "?";
  case TokenKind::Colon:
    return ":";
  case TokenKind::Assign:
    return "=";
  case TokenKind::PlusAssign:
    return "+=";
  case TokenKind::MinusAssign:
    return "-=";
  case TokenKind::StarAssign:
    return "*=";
  case TokenKind::Plus:
    return "+";
  case TokenKind::Minus:
    return "-";
  case TokenKind::Star:
    return "*";
  case TokenKind::Slash:
    return "/";
  case TokenKind::Percent:
    return "%";
  case TokenKind::PlusPlus:
    return "++";
  case TokenKind::MinusMinus:
    return "--";
  case TokenKind::Less:
    return "<";
  case TokenKind::Greater:
    return ">";
  case TokenKind::LessEqual:
    return "<=";
  case TokenKind::GreaterEqual:
    return ">=";
  case TokenKind::EqualEqual:
    return "==";
  case TokenKind::NotEqual:
    return "!=";
  case TokenKind::AmpAmp:
    return "&&";
  case TokenKind::PipePipe:
    return "||";
  case TokenKind::Amp:
    return "&";
  case TokenKind::Pipe:
    return "|";
  case TokenKind::Caret:
    return "^";
  case TokenKind::Tilde:
    return "~";
  case TokenKind::Not:
    return "!";
  case TokenKind::Shl:
    return "<<";
  case TokenKind::Shr:
    return ">>";
  }
  return "<unknown>";
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::peek(int Ahead) const {
  const size_t Index = Pos + static_cast<size_t>(Ahead);
  return Index < Source.size() ? Source[Index] : '\0';
}

char Lexer::advance() {
  const char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

Token Lexer::makeToken(TokenKind Kind, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Line = TokLine;
  T.Col = TokCol;
  return T;
}

Token Lexer::errorToken(const std::string &Message) {
  if (ErrorMessage.empty())
    ErrorMessage = "line " + std::to_string(TokLine) + ": " + Message;
  return makeToken(TokenKind::End);
}

bool Lexer::skipAttribute() {
  // Consume `__attribute__ (( ... ))` with balanced parens.
  const std::string Keyword = "__attribute__";
  if (Source.compare(Pos, Keyword.size(), Keyword) != 0)
    return false;
  for (size_t I = 0; I < Keyword.size(); ++I)
    advance();
  skipTrivia();
  if (peek() != '(')
    return true;
  int Depth = 0;
  do {
    const char C = advance();
    if (C == '(')
      ++Depth;
    else if (C == ')')
      --Depth;
    else if (C == '\0')
      return true;
  } while (Depth > 0);
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    const char C = peek();
    if (isSpaceAscii(C)) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0')
        advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
      continue;
    }
    if (C == '_' && skipAttribute())
      continue;
    return;
  }
}

Token Lexer::lexPragma() {
  // Pos currently at '#'. Capture the rest of the line.
  std::string Text;
  while (peek() != '\n' && peek() != '\0')
    Text.push_back(advance());
  // Strip the leading '#'.
  return makeToken(TokenKind::Pragma, Text.substr(1));
}

namespace {

/// The keyword set as an immutable interner: dense symbol ids index the
/// kind array, and classification probes the source text in place — no
/// per-lookup std::string, no node-based map. Built once; find() on the
/// fully-built table is const and thread-safe.
struct KeywordTable {
  Interner Symbols;
  TokenKind Kinds[12];

  KeywordTable() {
    const std::pair<const char *, TokenKind> Keywords[] = {
        {"for", TokenKind::KwFor},       {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},     {"return", TokenKind::KwReturn},
        {"char", TokenKind::KwChar},     {"short", TokenKind::KwShort},
        {"int", TokenKind::KwInt},       {"long", TokenKind::KwLong},
        {"float", TokenKind::KwFloat},   {"double", TokenKind::KwDouble},
        {"unsigned", TokenKind::KwUnsigned}, {"void", TokenKind::KwVoid},
    };
    for (const auto &[Text, Kind] : Keywords)
      Kinds[Symbols.intern(Text)] = Kind;
  }
};

const KeywordTable &keywords() {
  static const KeywordTable Table;
  return Table;
}

} // namespace

Token Lexer::lexIdentifierOrKeyword() {
  const size_t Start = Pos;
  while (isIdentAscii(peek()))
    advance();
  const std::string_view Text(Source.data() + Start, Pos - Start);

  const KeywordTable &Table = keywords();
  if (std::optional<uint32_t> Id = Table.Symbols.find(Text))
    return makeToken(Table.Kinds[*Id], std::string(Text));
  return makeToken(TokenKind::Identifier, std::string(Text));
}

Token Lexer::lexNumber() {
  std::string Text;
  bool IsFloat = false;
  while (isDigitAscii(peek()))
    Text.push_back(advance());
  if (peek() == '.' && isDigitAscii(peek(1))) {
    IsFloat = true;
    Text.push_back(advance());
    while (isDigitAscii(peek()))
      Text.push_back(advance());
  }
  if (peek() == 'e' || peek() == 'E') {
    const char Next = peek(1);
    const char Next2 = peek(2);
    if (isDigitAscii(Next) ||
        ((Next == '+' || Next == '-') && isDigitAscii(Next2))) {
      IsFloat = true;
      Text.push_back(advance());
      if (peek() == '+' || peek() == '-')
        Text.push_back(advance());
      while (isDigitAscii(peek()))
        Text.push_back(advance());
    }
  }
  // Accept and drop C suffixes.
  while (peek() == 'f' || peek() == 'F' || peek() == 'u' || peek() == 'U' ||
         peek() == 'l' || peek() == 'L') {
    if (peek() == 'f' || peek() == 'F')
      IsFloat = true;
    advance();
  }
  Token T = makeToken(IsFloat ? TokenKind::FloatLiteral
                              : TokenKind::IntLiteral,
                      Text);
  if (IsFloat)
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexToken() {
  skipTrivia();
  TokLine = Line;
  TokCol = Col;
  const char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::End);
  if (C == '#')
    return lexPragma();
  if (isAlphaAscii(C) || C == '_')
    return lexIdentifierOrKeyword();
  if (isDigitAscii(C))
    return lexNumber();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case ';':
    return makeToken(TokenKind::Semi);
  case ',':
    return makeToken(TokenKind::Comma);
  case '?':
    return makeToken(TokenKind::Question);
  case ':':
    return makeToken(TokenKind::Colon);
  case '~':
    return makeToken(TokenKind::Tilde);
  case '^':
    return makeToken(TokenKind::Caret);
  case '%':
    return makeToken(TokenKind::Percent);
  case '/':
    return makeToken(TokenKind::Slash);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus);
    if (match('='))
      return makeToken(TokenKind::PlusAssign);
    return makeToken(TokenKind::Plus);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus);
    if (match('='))
      return makeToken(TokenKind::MinusAssign);
    return makeToken(TokenKind::Minus);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign);
    return makeToken(TokenKind::Star);
  case '<':
    if (match('<'))
      return makeToken(TokenKind::Shl);
    if (match('='))
      return makeToken(TokenKind::LessEqual);
    return makeToken(TokenKind::Less);
  case '>':
    if (match('>'))
      return makeToken(TokenKind::Shr);
    if (match('='))
      return makeToken(TokenKind::GreaterEqual);
    return makeToken(TokenKind::Greater);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual);
    return makeToken(TokenKind::Assign);
  case '!':
    if (match('='))
      return makeToken(TokenKind::NotEqual);
    return makeToken(TokenKind::Not);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp);
    return makeToken(TokenKind::Amp);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe);
    return makeToken(TokenKind::Pipe);
  default:
    return errorToken(std::string("unexpected character '") + C + "'");
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  // LoopLang averages ~3 source bytes per token; reserving up front saves
  // half a dozen vector growths (each moving every Token's string) per
  // parse on the serving cold path.
  Tokens.reserve(Source.size() / 3 + 8);
  for (;;) {
    Token T = lexToken();
    const bool AtEnd = T.is(TokenKind::End);
    Tokens.push_back(std::move(T));
    if (AtEnd || !ErrorMessage.empty())
      break;
  }
  if (Tokens.empty() || !Tokens.back().is(TokenKind::End))
    Tokens.push_back(makeToken(TokenKind::End));
  return Tokens;
}
