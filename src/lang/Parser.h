//===- lang/Parser.h - LoopLang recursive descent parser --------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for LoopLang. Produces the AST consumed by the
/// loop extractor, the embedding generator, and the IR lowering. Loops must
/// be canonical counted loops (see lang/AST.h); anything else is a parse
/// error, which matches the shape of the paper's loop dataset.
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_PARSER_H
#define NV_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Token.h"

#include <optional>
#include <vector>

namespace nv {

/// Parses LoopLang source text into a Program.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens);

  /// Parses a whole translation unit. Returns std::nullopt on error; the
  /// message is available via \c error().
  std::optional<Program> parseProgram();

  /// Returns the first error message, or empty on success.
  const std::string &error() const { return ErrorMessage; }

private:
  // Token cursor.
  const Token &peek(int Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);

  // Error handling: sets ErrorMessage (first error wins) and flips Failed.
  void fail(const std::string &Message);
  bool failed() const { return Failed; }

  // Grammar productions.
  bool parseTopLevel(Program &P);
  std::optional<ScalarType> parseTypeSpecifier();
  bool typeAhead() const;
  void parseGlobal(Program &P, ScalarType Ty, std::string Name);
  void parseFunction(Program &P, ScalarType Ty, bool IsVoid,
                     std::string Name);
  StmtPtr parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseFor();
  StmtPtr parseIf();
  StmtPtr parseDeclStmt();
  StmtPtr parseAssignOrExprStmt();
  std::optional<VectorPragma> parsePragmaText(const std::string &Text);

  ExprPtr parseExpr();
  ExprPtr parseTernary();
  ExprPtr parseBinary(int MinPrecedence);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string ErrorMessage;
  bool Failed = false;
  /// A pragma seen but not yet attached to a following for-statement.
  std::optional<VectorPragma> PendingPragma;
};

/// Convenience: lex + parse \p Source. Returns std::nullopt and fills
/// \p ErrorOut (if non-null) on failure.
std::optional<Program> parseSource(const std::string &Source,
                                   std::string *ErrorOut = nullptr);

} // namespace nv

#endif // NV_LANG_PARSER_H
