//===- lang/Token.h - LoopLang tokens ---------------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the LoopLang lexer. Pragma lines are lexed as a
/// single token carrying the raw directive text, mirroring how the paper's
/// framework treats `#pragma clang loop ...` as an opaque hint line.
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_TOKEN_H
#define NV_LANG_TOKEN_H

#include <string>

namespace nv {

/// Lexical token kind.
enum class TokenKind {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  Pragma, ///< A full `#pragma ...` line; Text holds the directive body.
  // Keywords.
  KwFor,
  KwIf,
  KwElse,
  KwReturn,
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwUnsigned,
  KwVoid,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Question,
  Colon,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Not,
  Shl,
  Shr,
};

/// A single token with its source position (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::End;
  std::string Text;   ///< Identifier spelling, literal text, or pragma body.
  long long IntValue = 0;
  double FloatValue = 0.0;
  int Line = 0;
  int Col = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Returns a printable name for \p Kind (used in parse diagnostics).
const char *tokenKindName(TokenKind Kind);

} // namespace nv

#endif // NV_LANG_TOKEN_H
