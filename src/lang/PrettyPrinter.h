//===- lang/PrettyPrinter.h - Render AST back to source ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders LoopLang ASTs back to compilable source text, including injected
/// vectorization pragmas (paper Fig 4 shows the annotated output). The
/// printer round-trips: parse(print(P)) is structurally identical to P,
/// which the test suite checks property-style.
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_PRETTYPRINTER_H
#define NV_LANG_PRETTYPRINTER_H

#include "lang/AST.h"

#include <string>

namespace nv {

/// Renders \p P as LoopLang source.
std::string printProgram(const Program &P);

/// Renders a single statement subtree (used for loop context extraction:
/// the embedding generator consumes the outermost loop's text, §3.3).
std::string printStmt(const Stmt &S, int Indent = 0);

/// Renders a single expression.
std::string printExpr(const Expr &E);

/// Renders the pragma line for \p Pragma (no trailing newline).
std::string printPragma(const VectorPragma &Pragma);

} // namespace nv

#endif // NV_LANG_PRETTYPRINTER_H
