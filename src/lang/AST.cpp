//===- lang/AST.cpp - LoopLang abstract syntax tree -----------------------===//

#include "lang/AST.h"

using namespace nv;

Expr::~Expr() = default;
Stmt::~Stmt() = default;

bool nv::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

const char *nv::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::And:
    return "&";
  case BinaryOp::Or:
    return "|";
  case BinaryOp::Xor:
    return "^";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  }
  return "?";
}

ExprPtr IntLit::clone() const { return std::make_unique<IntLit>(Value); }

ExprPtr FloatLit::clone() const { return std::make_unique<FloatLit>(Value); }

ExprPtr VarRef::clone() const { return std::make_unique<VarRef>(Name); }

ExprPtr ArrayRef::clone() const {
  std::vector<ExprPtr> ClonedIndices;
  ClonedIndices.reserve(Indices.size());
  for (const auto &Index : Indices)
    ClonedIndices.push_back(Index->clone());
  return std::make_unique<ArrayRef>(Name, std::move(ClonedIndices));
}

ExprPtr UnaryExpr::clone() const {
  return std::make_unique<UnaryExpr>(Op, Sub->clone());
}

ExprPtr BinaryExpr::clone() const {
  return std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone());
}

ExprPtr TernaryExpr::clone() const {
  return std::make_unique<TernaryExpr>(Cond->clone(), Then->clone(),
                                       Else->clone());
}

ExprPtr CastExpr::clone() const {
  return std::make_unique<CastExpr>(Ty, Sub->clone());
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> ClonedArgs;
  ClonedArgs.reserve(Args.size());
  for (const auto &Arg : Args)
    ClonedArgs.push_back(Arg->clone());
  return std::make_unique<CallExpr>(Callee, std::move(ClonedArgs));
}

StmtPtr BlockStmt::clone() const {
  std::vector<StmtPtr> ClonedStmts;
  ClonedStmts.reserve(Stmts.size());
  for (const auto &S : Stmts)
    ClonedStmts.push_back(S->clone());
  return std::make_unique<BlockStmt>(std::move(ClonedStmts));
}

StmtPtr DeclStmt::clone() const {
  return std::make_unique<DeclStmt>(Ty, Name, Init ? Init->clone() : nullptr);
}

StmtPtr AssignStmt::clone() const {
  return std::make_unique<AssignStmt>(LValue->clone(), Op, RHS->clone());
}

StmtPtr ForStmt::clone() const {
  auto Cloned = std::make_unique<ForStmt>(IndexVar, Init->clone(), Cond,
                                          Bound->clone(), Step,
                                          Body->clone());
  Cloned->DeclaresIndex = DeclaresIndex;
  Cloned->Pragma = Pragma;
  return Cloned;
}

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(Cond->clone(), Then->clone(),
                                  Else ? Else->clone() : nullptr);
}

StmtPtr ReturnStmt::clone() const {
  return std::make_unique<ReturnStmt>(Value ? Value->clone() : nullptr);
}

Function::Function(const Function &Other)
    : RetTy(Other.RetTy), IsVoid(Other.IsVoid), Name(Other.Name),
      Body(Other.Body ? Other.Body->clone() : nullptr) {}

Function &Function::operator=(const Function &Other) {
  if (this == &Other)
    return *this;
  RetTy = Other.RetTy;
  IsVoid = Other.IsVoid;
  Name = Other.Name;
  Body = Other.Body ? Other.Body->clone() : nullptr;
  return *this;
}

const VarDecl *Program::findGlobal(const std::string &Name) const {
  for (const VarDecl &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}
