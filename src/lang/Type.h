//===- lang/Type.h - Scalar types of the loop language ----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar element types of LoopLang, the C-subset loop language this
/// reproduction uses in place of full C (see DESIGN.md, substitution table).
/// Element width drives both the machine model (lanes per vector register)
/// and the baseline cost model's maximum vectorization factor.
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_TYPE_H
#define NV_LANG_TYPE_H

#include <cassert>
#include <string>

namespace nv {

/// Scalar element type.
enum class ScalarType {
  Char,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  Float,
  Double,
};

/// Returns the size of \p Ty in bytes.
inline unsigned sizeOf(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Char:
  case ScalarType::UChar:
    return 1;
  case ScalarType::Short:
  case ScalarType::UShort:
    return 2;
  case ScalarType::Int:
  case ScalarType::UInt:
  case ScalarType::Float:
    return 4;
  case ScalarType::Long:
  case ScalarType::ULong:
  case ScalarType::Double:
    return 8;
  }
  assert(false && "covered switch");
  return 4;
}

/// Returns true for float/double.
inline bool isFloatTy(ScalarType Ty) {
  return Ty == ScalarType::Float || Ty == ScalarType::Double;
}

/// Returns true for the unsigned integer types.
inline bool isUnsignedTy(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::UChar:
  case ScalarType::UShort:
  case ScalarType::UInt:
  case ScalarType::ULong:
    return true;
  default:
    return false;
  }
}

/// Renders \p Ty as LoopLang / C source text.
inline std::string typeName(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Char:
    return "char";
  case ScalarType::UChar:
    return "unsigned char";
  case ScalarType::Short:
    return "short";
  case ScalarType::UShort:
    return "unsigned short";
  case ScalarType::Int:
    return "int";
  case ScalarType::UInt:
    return "unsigned int";
  case ScalarType::Long:
    return "long";
  case ScalarType::ULong:
    return "unsigned long";
  case ScalarType::Float:
    return "float";
  case ScalarType::Double:
    return "double";
  }
  assert(false && "covered switch");
  return "int";
}

/// Usual C arithmetic conversion result of combining two element types
/// (simplified: wider wins; float beats int; unsigned beats signed at the
/// same width). Used by the lowering to type IR instructions.
inline ScalarType promote(ScalarType A, ScalarType B) {
  if (A == ScalarType::Double || B == ScalarType::Double)
    return ScalarType::Double;
  if (A == ScalarType::Float || B == ScalarType::Float)
    return ScalarType::Float;
  if (sizeOf(A) != sizeOf(B))
    return sizeOf(A) > sizeOf(B) ? A : B;
  return isUnsignedTy(A) ? A : B;
}

} // namespace nv

#endif // NV_LANG_TYPE_H
