//===- lang/LoopExtractor.cpp - Find vectorization sites ------------------===//

#include "lang/LoopExtractor.h"

#include "lang/PrettyPrinter.h"

#include <cassert>

using namespace nv;

namespace {

/// Depth-first walker collecting innermost loops along with their outermost
/// enclosing loop.
class LoopWalker {
public:
  explicit LoopWalker(const Function &F) : Func(&F) {}

  void walkStmt(Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Block:
      for (auto &Child : static_cast<BlockStmt &>(S).Stmts)
        walkStmt(*Child);
      return;
    case StmtKind::For: {
      auto &Loop = static_cast<ForStmt &>(S);
      LoopStack.push_back(&Loop);
      const size_t SitesBefore = Sites.size();
      walkStmt(*Loop.Body);
      // If no deeper loop produced a site, this loop is innermost.
      if (Sites.size() == SitesBefore) {
        LoopSite Site;
        Site.Inner = &Loop;
        Site.Outer = LoopStack.front();
        Site.Func = Func;
        Site.Depth = static_cast<int>(LoopStack.size());
        Site.Nest = LoopStack;
        Sites.push_back(Site);
      }
      LoopStack.pop_back();
      return;
    }
    case StmtKind::If: {
      auto &If = static_cast<IfStmt &>(S);
      walkStmt(*If.Then);
      if (If.Else)
        walkStmt(*If.Else);
      return;
    }
    case StmtKind::Decl:
    case StmtKind::Assign:
    case StmtKind::Return:
      return;
    }
    assert(false && "covered switch");
  }

  std::vector<LoopSite> takeSites() { return std::move(Sites); }

private:
  const Function *Func;
  std::vector<ForStmt *> LoopStack;
  std::vector<LoopSite> Sites;
};

} // namespace

std::vector<LoopSite> nv::extractLoops(Program &P, bool WithContextText) {
  std::vector<LoopSite> AllSites;
  for (Function &F : P.Functions) {
    LoopWalker Walker(F);
    if (F.Body)
      Walker.walkStmt(*F.Body);
    for (LoopSite &Site : Walker.takeSites())
      AllSites.push_back(std::move(Site));
  }
  for (size_t I = 0; I < AllSites.size(); ++I) {
    AllSites[I].Id = static_cast<int>(I);
    if (WithContextText)
      AllSites[I].ContextText = printStmt(*AllSites[I].Outer);
  }
  return AllSites;
}

void nv::injectPragma(LoopSite &Site, const VectorPragma &Pragma) {
  assert(Site.Inner && "site has no loop");
  assert(Pragma.VF >= 1 && Pragma.IF >= 1 && "factors must be >= 1");
  Site.Inner->Pragma = Pragma;
}

void nv::clearPragma(LoopSite &Site) {
  assert(Site.Inner && "site has no loop");
  Site.Inner->Pragma.reset();
}

static void clearPragmasIn(Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Block:
    for (auto &Child : static_cast<BlockStmt &>(S).Stmts)
      clearPragmasIn(*Child);
    return;
  case StmtKind::For: {
    auto &Loop = static_cast<ForStmt &>(S);
    Loop.Pragma.reset();
    clearPragmasIn(*Loop.Body);
    return;
  }
  case StmtKind::If: {
    auto &If = static_cast<IfStmt &>(S);
    clearPragmasIn(*If.Then);
    if (If.Else)
      clearPragmasIn(*If.Else);
    return;
  }
  default:
    return;
  }
}

void nv::clearAllPragmas(Program &P) {
  for (Function &F : P.Functions)
    if (F.Body)
      clearPragmasIn(*F.Body);
}
