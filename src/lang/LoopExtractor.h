//===- lang/LoopExtractor.h - Find vectorization sites ----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic loop extractor from the paper's framework (Fig 3): walks a
/// program and returns every vectorization site. A site is an *innermost*
/// loop (where the pragma is injected, §3) together with its outermost
/// enclosing loop (whose body text feeds the embedding generator — the paper
/// found outer-loop context works better than inner-only, §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_LOOPEXTRACTOR_H
#define NV_LANG_LOOPEXTRACTOR_H

#include "lang/AST.h"

#include <string>
#include <vector>

namespace nv {

/// One vectorization site.
struct LoopSite {
  int Id = 0;             ///< Sequential id in program traversal order.
  ForStmt *Inner = nullptr; ///< Innermost loop; pragma injection point.
  ForStmt *Outer = nullptr; ///< Outermost enclosing loop (== Inner if depth 1).
  const Function *Func = nullptr;
  int Depth = 1;          ///< Nesting depth of Inner (1 = not nested).
  /// Source text of Outer (human-readable site context). Filled only when
  /// extractLoops is called with WithContextText — pretty-printing every
  /// site is pure overhead on the serving cold path, which embeds the AST
  /// directly.
  std::string ContextText;
  /// Full enclosing loop chain, outermost first; back() == Inner.
  std::vector<ForStmt *> Nest;
};

/// Extracts all vectorization sites from \p P. Pointers remain valid while
/// the program is alive and no statements are destroyed. Pass
/// \p WithContextText = false to skip pretty-printing each site's
/// ContextText (the serving layer's cold path does).
std::vector<LoopSite> extractLoops(Program &P, bool WithContextText = true);

/// Injects \p Pragma at site \p Site (sets it on the innermost loop).
void injectPragma(LoopSite &Site, const VectorPragma &Pragma);

/// Removes the pragma at \p Site.
void clearPragma(LoopSite &Site);

/// Removes every vectorization pragma in \p P.
void clearAllPragmas(Program &P);

} // namespace nv

#endif // NV_LANG_LOOPEXTRACTOR_H
