//===- lang/AST.h - LoopLang abstract syntax tree ---------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for LoopLang. Loops are kept canonical (`for (i = L; i < U; i += S)`),
/// which matches the paper's synthetic dataset (§3.2) and makes affine
/// access analysis exact. For-statements carry the optional vectorization
/// pragma `#pragma clang loop vectorize_width(VF) interleave_count(IF)`
/// the RL agent injects (paper Fig 4).
///
//===----------------------------------------------------------------------===//

#ifndef NV_LANG_AST_H
#define NV_LANG_AST_H

#include "lang/Type.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nv {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Expression node kinds (LLVM-style hand-rolled RTTI discriminator).
enum class ExprKind {
  IntLit,
  FloatLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
  Ternary,
  Cast,
  Call,
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all expressions.
class Expr {
public:
  virtual ~Expr();

  ExprKind kind() const { return Kind; }

  /// Deep-copies this expression.
  virtual ExprPtr clone() const = 0;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

/// Integer literal, e.g. `512`.
class IntLit : public Expr {
public:
  explicit IntLit(long long Value) : Expr(ExprKind::IntLit), Value(Value) {}

  long long Value;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }
};

/// Floating-point literal, e.g. `0.5`.
class FloatLit : public Expr {
public:
  explicit FloatLit(double Value) : Expr(ExprKind::FloatLit), Value(Value) {}

  double Value;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLit;
  }
};

/// Scalar variable reference, e.g. `sum` or a loop index `i`.
class VarRef : public Expr {
public:
  explicit VarRef(std::string Name)
      : Expr(ExprKind::VarRef), Name(std::move(Name)) {}

  std::string Name;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }
};

/// Array element reference, e.g. `A[i][j]`.
class ArrayRef : public Expr {
public:
  ArrayRef(std::string Name, std::vector<ExprPtr> Indices)
      : Expr(ExprKind::ArrayRef), Name(std::move(Name)),
        Indices(std::move(Indices)) {}

  std::string Name;
  std::vector<ExprPtr> Indices;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayRef;
  }
};

/// Unary operator kinds.
enum class UnaryOp { Neg, Not, BitNot };

/// Unary expression, e.g. `-x`.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Sub)
      : Expr(ExprKind::Unary), Op(Op), Sub(std::move(Sub)) {}

  UnaryOp Op;
  ExprPtr Sub;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }
};

/// Binary operator kinds.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  LAnd,
  LOr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
};

/// Returns true for the comparison operators (Lt..Ne).
bool isComparisonOp(BinaryOp Op);

/// Returns the C spelling of \p Op.
const char *binaryOpSpelling(BinaryOp Op);

/// Binary expression, e.g. `a * b`.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }
};

/// Conditional expression `cond ? a : b` (maps to a vector select).
class TernaryExpr : public Expr {
public:
  TernaryExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(ExprKind::Ternary), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Ternary;
  }
};

/// Explicit cast `(type) expr`, used by the dataset's type-conversion loops.
class CastExpr : public Expr {
public:
  CastExpr(ScalarType Ty, ExprPtr Sub)
      : Expr(ExprKind::Cast), Ty(Ty), Sub(std::move(Sub)) {}

  ScalarType Ty;
  ExprPtr Sub;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Cast; }
};

/// Builtin call, e.g. `sqrt(x)`, `min(a, b)`.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  std::string Callee;
  std::vector<ExprPtr> Args;

  ExprPtr clone() const override;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }
};

/// dyn_cast-style helper (LLVM idiom without RTTI).
template <typename T> T *dynCast(Expr *E) {
  return E && T::classof(E) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T *dynCast(const Expr *E) {
  return E && T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Statement node kinds.
enum class StmtKind { Block, Decl, Assign, For, If, Return };

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Base class of all statements.
class Stmt {
public:
  virtual ~Stmt();

  StmtKind kind() const { return Kind; }
  virtual StmtPtr clone() const = 0;

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

private:
  StmtKind Kind;
};

/// `{ stmt* }`
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<StmtPtr> Stmts = {})
      : Stmt(StmtKind::Block), Stmts(std::move(Stmts)) {}

  std::vector<StmtPtr> Stmts;

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }
};

/// Local declaration: `float sum = 0;` (scalars only inside functions).
class DeclStmt : public Stmt {
public:
  DeclStmt(ScalarType Ty, std::string Name, ExprPtr Init)
      : Stmt(StmtKind::Decl), Ty(Ty), Name(std::move(Name)),
        Init(std::move(Init)) {}

  ScalarType Ty;
  std::string Name;
  ExprPtr Init; ///< May be null.

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }
};

/// Assignment operator kinds (compound ops mark reduction candidates).
enum class AssignOp { Assign, AddAssign, SubAssign, MulAssign };

/// `lvalue op= expr;` where lvalue is a VarRef or ArrayRef.
class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr LValue, AssignOp Op, ExprPtr RHS)
      : Stmt(StmtKind::Assign), LValue(std::move(LValue)), Op(Op),
        RHS(std::move(RHS)) {}

  ExprPtr LValue;
  AssignOp Op;
  ExprPtr RHS;

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }
};

/// The vectorization hint the agent injects before an innermost loop.
struct VectorPragma {
  int VF = 0; ///< vectorize_width
  int IF = 0; ///< interleave_count
};

/// Canonical counted loop: `for (IndexVar = Init; IndexVar CondOp Bound;
/// IndexVar += Step) Body`.
class ForStmt : public Stmt {
public:
  /// Loop-exit comparison: `<` or `<=`.
  enum class CondKind { LT, LE };

  ForStmt(std::string IndexVar, ExprPtr Init, CondKind Cond, ExprPtr Bound,
          long long Step, StmtPtr Body)
      : Stmt(StmtKind::For), IndexVar(std::move(IndexVar)),
        Init(std::move(Init)), Cond(Cond), Bound(std::move(Bound)),
        Step(Step), Body(std::move(Body)) {}

  std::string IndexVar;
  ExprPtr Init;
  CondKind Cond;
  ExprPtr Bound;
  long long Step;
  StmtPtr Body; ///< Always a BlockStmt.
  /// Whether the index variable is declared in the init clause
  /// (`for (int i = ...)`); round-tripped by the printer.
  bool DeclaresIndex = false;
  std::optional<VectorPragma> Pragma;

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }
};

/// `if (cond) { ... } else { ... }`
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }
};

/// `return expr;`
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(ExprPtr Value)
      : Stmt(StmtKind::Return), Value(std::move(Value)) {}

  ExprPtr Value; ///< May be null.

  StmtPtr clone() const override;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

template <typename T> T *dynCast(Stmt *S) {
  return S && T::classof(S) ? static_cast<T *>(S) : nullptr;
}
template <typename T> const T *dynCast(const Stmt *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}

//===----------------------------------------------------------------------===//
// Declarations and program
//===----------------------------------------------------------------------===//

/// A global scalar or array declaration.
struct VarDecl {
  ScalarType Ty = ScalarType::Int;
  std::string Name;
  std::vector<long long> Dims; ///< Empty for scalars; up to 3 dimensions.
  /// Literal initializer for scalars (e.g. `int N = 512;`). The machine
  /// simulator resolves symbolic loop bounds through this; the compile-time
  /// cost model deliberately does not (such bounds are "unknown trip count",
  /// one of the loop features the paper's benchmarks exercise).
  std::optional<double> Init;

  bool isArray() const { return !Dims.empty(); }
  /// Total number of elements (1 for scalars).
  long long numElements() const {
    long long N = 1;
    for (long long D : Dims)
      N *= D;
    return N;
  }
};

/// A function definition.
struct Function {
  ScalarType RetTy = ScalarType::Int;
  bool IsVoid = false;
  std::string Name;
  StmtPtr Body; ///< Always a BlockStmt.

  Function() = default;
  Function(Function &&) = default;
  Function &operator=(Function &&) = default;
  Function(const Function &Other);
  Function &operator=(const Function &Other);
};

/// A whole translation unit.
struct Program {
  std::vector<VarDecl> Globals;
  std::vector<Function> Functions;

  /// Finds a global by name; returns nullptr if absent.
  const VarDecl *findGlobal(const std::string &Name) const;
};

} // namespace nv

#endif // NV_LANG_AST_H
