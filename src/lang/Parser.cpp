//===- lang/Parser.cpp - LoopLang recursive descent parser ----------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstdlib>

using namespace nv;

Parser::Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::End) &&
         "token stream must be End-terminated");
}

const Token &Parser::peek(int Ahead) const {
  const size_t Index = Pos + static_cast<size_t>(Ahead);
  return Index < Tokens.size() ? Tokens[Index] : Tokens.back();
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  fail(std::string("expected '") + tokenKindName(Kind) + "' " + Context +
       ", got '" + tokenKindName(peek().Kind) + "' at line " +
       std::to_string(peek().Line));
  return false;
}

void Parser::fail(const std::string &Message) {
  if (ErrorMessage.empty())
    ErrorMessage = Message;
  Failed = true;
}

std::optional<ScalarType> Parser::parseTypeSpecifier() {
  bool Unsigned = false;
  if (accept(TokenKind::KwUnsigned))
    Unsigned = true;
  switch (peek().Kind) {
  case TokenKind::KwChar:
    advance();
    return Unsigned ? ScalarType::UChar : ScalarType::Char;
  case TokenKind::KwShort:
    advance();
    return Unsigned ? ScalarType::UShort : ScalarType::Short;
  case TokenKind::KwInt:
    advance();
    return Unsigned ? ScalarType::UInt : ScalarType::Int;
  case TokenKind::KwLong:
    advance();
    return Unsigned ? ScalarType::ULong : ScalarType::Long;
  case TokenKind::KwFloat:
    advance();
    return ScalarType::Float;
  case TokenKind::KwDouble:
    advance();
    return ScalarType::Double;
  default:
    if (Unsigned)
      return ScalarType::UInt; // `unsigned x` == `unsigned int x`.
    return std::nullopt;
  }
}

bool Parser::typeAhead() const {
  switch (peek().Kind) {
  case TokenKind::KwUnsigned:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
    return true;
  default:
    return false;
  }
}

std::optional<Program> Parser::parseProgram() {
  Program P;
  while (!check(TokenKind::End) && !failed())
    if (!parseTopLevel(P))
      break;
  if (failed())
    return std::nullopt;
  return P;
}

bool Parser::parseTopLevel(Program &P) {
  // Stray pragmas at the top level are ignored (matches clang behaviour for
  // loop pragmas outside functions).
  if (check(TokenKind::Pragma)) {
    advance();
    return true;
  }

  bool IsVoid = accept(TokenKind::KwVoid);
  std::optional<ScalarType> Ty;
  if (!IsVoid) {
    Ty = parseTypeSpecifier();
    if (!Ty) {
      fail("expected a declaration at line " + std::to_string(peek().Line));
      return false;
    }
  }
  if (!check(TokenKind::Identifier)) {
    fail("expected identifier after type at line " +
         std::to_string(peek().Line));
    return false;
  }
  std::string Name = advance().Text;

  if (check(TokenKind::LParen)) {
    parseFunction(P, IsVoid ? ScalarType::Int : *Ty, IsVoid,
                  std::move(Name));
    return !failed();
  }
  if (IsVoid) {
    fail("void is only valid as a function return type");
    return false;
  }
  parseGlobal(P, *Ty, std::move(Name));
  return !failed();
}

void Parser::parseGlobal(Program &P, ScalarType Ty, std::string Name) {
  VarDecl Decl;
  Decl.Ty = Ty;
  Decl.Name = std::move(Name);
  while (accept(TokenKind::LBracket)) {
    if (!check(TokenKind::IntLiteral)) {
      fail("array dimensions must be integer literals (line " +
           std::to_string(peek().Line) + ")");
      return;
    }
    Decl.Dims.push_back(advance().IntValue);
    if (!expect(TokenKind::RBracket, "after array dimension"))
      return;
  }
  // Optional scalar initializer. Literal (possibly negated) initializers
  // are kept so the simulator can resolve symbolic loop bounds; anything
  // else is evaluated as zero.
  if (accept(TokenKind::Assign)) {
    ExprPtr Init = parseExpr();
    double Value = 0.0;
    const Expr *E = Init.get();
    double Sign = 1.0;
    if (const auto *U = dynCast<UnaryExpr>(E); U && U->Op == UnaryOp::Neg) {
      Sign = -1.0;
      E = U->Sub.get();
    }
    if (const auto *I = dynCast<IntLit>(E))
      Value = static_cast<double>(I->Value);
    else if (const auto *F = dynCast<FloatLit>(E))
      Value = F->Value;
    Decl.Init = Sign * Value;
  }
  expect(TokenKind::Semi, "after global declaration");
  P.Globals.push_back(std::move(Decl));
}

void Parser::parseFunction(Program &P, ScalarType Ty, bool IsVoid,
                           std::string Name) {
  expect(TokenKind::LParen, "after function name");
  expect(TokenKind::RParen, "in function declarator (parameters are not "
                            "supported in LoopLang)");
  Function F;
  F.RetTy = Ty;
  F.IsVoid = IsVoid;
  F.Name = std::move(Name);
  F.Body = parseBlock();
  if (!failed())
    P.Functions.push_back(std::move(F));
}

StmtPtr Parser::parseBlock() {
  if (!expect(TokenKind::LBrace, "to open a block"))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::End) && !failed()) {
    StmtPtr S = parseStmt();
    if (S)
      Stmts.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to close a block");
  return std::make_unique<BlockStmt>(std::move(Stmts));
}

std::optional<VectorPragma> Parser::parsePragmaText(const std::string &Text) {
  // Expected body: "pragma clang loop vectorize_width(V) interleave_count(I)"
  // (order-insensitive; either clause may be absent and defaults to 1).
  if (!contains(Text, "clang") || !contains(Text, "loop"))
    return std::nullopt;
  auto ReadClause = [&](const std::string &Key) -> int {
    size_t At = Text.find(Key);
    if (At == std::string::npos)
      return 0;
    At = Text.find('(', At);
    if (At == std::string::npos)
      return 0;
    return std::atoi(Text.c_str() + At + 1);
  };
  VectorPragma Pragma;
  Pragma.VF = ReadClause("vectorize_width");
  Pragma.IF = ReadClause("interleave_count");
  if (Pragma.VF <= 0 && Pragma.IF <= 0)
    return std::nullopt;
  Pragma.VF = std::max(Pragma.VF, 1);
  Pragma.IF = std::max(Pragma.IF, 1);
  return Pragma;
}

StmtPtr Parser::parseStmt() {
  if (check(TokenKind::Pragma)) {
    PendingPragma = parsePragmaText(advance().Text);
    return nullptr; // Attached to the next for-statement.
  }
  if (check(TokenKind::KwFor))
    return parseFor();
  if (check(TokenKind::KwIf))
    return parseIf();
  if (check(TokenKind::LBrace))
    return parseBlock();
  if (accept(TokenKind::KwReturn)) {
    ExprPtr Value;
    if (!check(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return");
    return std::make_unique<ReturnStmt>(std::move(Value));
  }
  if (typeAhead())
    return parseDeclStmt();
  return parseAssignOrExprStmt();
}

StmtPtr Parser::parseDeclStmt() {
  std::optional<ScalarType> Ty = parseTypeSpecifier();
  assert(Ty && "caller checked typeAhead()");
  if (!check(TokenKind::Identifier)) {
    fail("expected identifier in declaration at line " +
         std::to_string(peek().Line));
    return nullptr;
  }
  std::string Name = advance().Text;
  ExprPtr Init;
  if (accept(TokenKind::Assign))
    Init = parseExpr();
  expect(TokenKind::Semi, "after declaration");
  return std::make_unique<DeclStmt>(*Ty, std::move(Name), std::move(Init));
}

StmtPtr Parser::parseFor() {
  std::optional<VectorPragma> Pragma = PendingPragma;
  PendingPragma.reset();

  expect(TokenKind::KwFor, "");
  expect(TokenKind::LParen, "after 'for'");

  bool DeclaresIndex = false;
  if (typeAhead()) {
    DeclaresIndex = true;
    (void)parseTypeSpecifier(); // Index type is always treated as long.
  }
  if (!check(TokenKind::Identifier)) {
    fail("expected loop index variable at line " +
         std::to_string(peek().Line));
    return nullptr;
  }
  std::string IndexVar = advance().Text;
  expect(TokenKind::Assign, "in loop init");
  ExprPtr Init = parseExpr();
  expect(TokenKind::Semi, "after loop init");

  if (!check(TokenKind::Identifier) || peek().Text != IndexVar) {
    fail("loop condition must test the index variable '" + IndexVar +
         "' (line " + std::to_string(peek().Line) + ")");
    return nullptr;
  }
  advance();
  ForStmt::CondKind Cond;
  if (accept(TokenKind::Less)) {
    Cond = ForStmt::CondKind::LT;
  } else if (accept(TokenKind::LessEqual)) {
    Cond = ForStmt::CondKind::LE;
  } else {
    fail("loop condition must be '<' or '<=' (line " +
         std::to_string(peek().Line) + ")");
    return nullptr;
  }
  ExprPtr Bound = parseExpr();
  expect(TokenKind::Semi, "after loop condition");

  long long Step = 1;
  if (accept(TokenKind::PlusPlus)) {
    // Pre-increment form `++i`.
    if (!check(TokenKind::Identifier) || peek().Text != IndexVar) {
      fail("loop step must increment the index variable");
      return nullptr;
    }
    advance();
  } else {
    if (!check(TokenKind::Identifier) || peek().Text != IndexVar) {
      fail("loop step must increment the index variable '" + IndexVar +
           "' (line " + std::to_string(peek().Line) + ")");
      return nullptr;
    }
    advance();
    if (accept(TokenKind::PlusPlus)) {
      Step = 1;
    } else if (accept(TokenKind::PlusAssign)) {
      if (!check(TokenKind::IntLiteral)) {
        fail("loop step must be a constant (line " +
             std::to_string(peek().Line) + ")");
        return nullptr;
      }
      Step = advance().IntValue;
      if (Step <= 0) {
        fail("loop step must be positive");
        return nullptr;
      }
    } else {
      fail("unsupported loop step form (line " +
           std::to_string(peek().Line) + ")");
      return nullptr;
    }
  }
  expect(TokenKind::RParen, "after loop header");

  StmtPtr Body;
  if (check(TokenKind::LBrace)) {
    Body = parseBlock();
  } else {
    // Single-statement body: wrap in a block.
    std::vector<StmtPtr> Stmts;
    StmtPtr S = parseStmt();
    // A pragma immediately before a nested for can yield a null first
    // result; retry once so `for (...) #pragma ... for (...)` parses.
    if (!S && !failed())
      S = parseStmt();
    if (S)
      Stmts.push_back(std::move(S));
    Body = std::make_unique<BlockStmt>(std::move(Stmts));
  }
  if (failed())
    return nullptr;

  auto Loop = std::make_unique<ForStmt>(std::move(IndexVar), std::move(Init),
                                        Cond, std::move(Bound), Step,
                                        std::move(Body));
  Loop->DeclaresIndex = DeclaresIndex;
  Loop->Pragma = Pragma;
  return Loop;
}

StmtPtr Parser::parseIf() {
  expect(TokenKind::KwIf, "");
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then;
  if (check(TokenKind::LBrace)) {
    Then = parseBlock();
  } else {
    std::vector<StmtPtr> Stmts;
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
    Then = std::make_unique<BlockStmt>(std::move(Stmts));
  }
  StmtPtr Else;
  if (accept(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf)) {
      std::vector<StmtPtr> Stmts;
      if (StmtPtr S = parseIf())
        Stmts.push_back(std::move(S));
      Else = std::make_unique<BlockStmt>(std::move(Stmts));
    } else if (check(TokenKind::LBrace)) {
      Else = parseBlock();
    } else {
      std::vector<StmtPtr> Stmts;
      if (StmtPtr S = parseStmt())
        Stmts.push_back(std::move(S));
      Else = std::make_unique<BlockStmt>(std::move(Stmts));
    }
  }
  if (failed())
    return nullptr;
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseAssignOrExprStmt() {
  ExprPtr LValue = parsePostfix();
  if (failed())
    return nullptr;
  if (!LValue || (!dynCast<VarRef>(LValue.get()) &&
                  !dynCast<ArrayRef>(LValue.get()))) {
    fail("expected an assignable expression at line " +
         std::to_string(peek().Line));
    return nullptr;
  }

  AssignOp Op;
  if (accept(TokenKind::Assign)) {
    Op = AssignOp::Assign;
  } else if (accept(TokenKind::PlusAssign)) {
    Op = AssignOp::AddAssign;
  } else if (accept(TokenKind::MinusAssign)) {
    Op = AssignOp::SubAssign;
  } else if (accept(TokenKind::StarAssign)) {
    Op = AssignOp::MulAssign;
  } else if (accept(TokenKind::PlusPlus)) {
    // `x++;` desugars to `x += 1;`.
    expect(TokenKind::Semi, "after statement");
    return std::make_unique<AssignStmt>(std::move(LValue),
                                        AssignOp::AddAssign,
                                        std::make_unique<IntLit>(1));
  } else {
    fail("expected assignment operator at line " +
         std::to_string(peek().Line));
    return nullptr;
  }
  ExprPtr RHS = parseExpr();
  expect(TokenKind::Semi, "after statement");
  if (failed())
    return nullptr;
  return std::make_unique<AssignStmt>(std::move(LValue), Op, std::move(RHS));
}

ExprPtr Parser::parseExpr() { return parseTernary(); }

ExprPtr Parser::parseTernary() {
  ExprPtr Cond = parseBinary(0);
  if (failed() || !accept(TokenKind::Question))
    return Cond;
  ExprPtr Then = parseTernary();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr Else = parseTernary();
  if (failed())
    return nullptr;
  return std::make_unique<TernaryExpr>(std::move(Cond), std::move(Then),
                                       std::move(Else));
}

namespace {
/// Binary operator precedence table (higher binds tighter).
struct OpInfo {
  BinaryOp Op;
  int Precedence;
};
} // namespace

static bool binaryOpInfo(TokenKind Kind, OpInfo &Info) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Info = {BinaryOp::LOr, 1};
    return true;
  case TokenKind::AmpAmp:
    Info = {BinaryOp::LAnd, 2};
    return true;
  case TokenKind::Pipe:
    Info = {BinaryOp::Or, 3};
    return true;
  case TokenKind::Caret:
    Info = {BinaryOp::Xor, 4};
    return true;
  case TokenKind::Amp:
    Info = {BinaryOp::And, 5};
    return true;
  case TokenKind::EqualEqual:
    Info = {BinaryOp::Eq, 6};
    return true;
  case TokenKind::NotEqual:
    Info = {BinaryOp::Ne, 6};
    return true;
  case TokenKind::Less:
    Info = {BinaryOp::Lt, 7};
    return true;
  case TokenKind::Greater:
    Info = {BinaryOp::Gt, 7};
    return true;
  case TokenKind::LessEqual:
    Info = {BinaryOp::Le, 7};
    return true;
  case TokenKind::GreaterEqual:
    Info = {BinaryOp::Ge, 7};
    return true;
  case TokenKind::Shl:
    Info = {BinaryOp::Shl, 8};
    return true;
  case TokenKind::Shr:
    Info = {BinaryOp::Shr, 8};
    return true;
  case TokenKind::Plus:
    Info = {BinaryOp::Add, 9};
    return true;
  case TokenKind::Minus:
    Info = {BinaryOp::Sub, 9};
    return true;
  case TokenKind::Star:
    Info = {BinaryOp::Mul, 10};
    return true;
  case TokenKind::Slash:
    Info = {BinaryOp::Div, 10};
    return true;
  case TokenKind::Percent:
    Info = {BinaryOp::Rem, 10};
    return true;
  default:
    return false;
  }
}

ExprPtr Parser::parseBinary(int MinPrecedence) {
  ExprPtr LHS = parseUnary();
  for (;;) {
    if (failed())
      return nullptr;
    OpInfo Info;
    if (!binaryOpInfo(peek().Kind, Info) || Info.Precedence < MinPrecedence)
      return LHS;
    advance();
    ExprPtr RHS = parseBinary(Info.Precedence + 1);
    if (failed())
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Info.Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseUnary() {
  if (accept(TokenKind::Minus))
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary());
  if (accept(TokenKind::Not))
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary());
  if (accept(TokenKind::Tilde))
    return std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary());
  // Cast: '(' type ')' unary.
  if (check(TokenKind::LParen)) {
    const Token &Next = peek(1);
    switch (Next.Kind) {
    case TokenKind::KwUnsigned:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble: {
      advance(); // '('
      std::optional<ScalarType> Ty = parseTypeSpecifier();
      assert(Ty && "type token checked above");
      expect(TokenKind::RParen, "after cast type");
      return std::make_unique<CastExpr>(*Ty, parseUnary());
    }
    default:
      break;
    }
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (failed())
    return nullptr;
  // Array subscripts.
  if (auto *Var = dynCast<VarRef>(E.get())) {
    if (check(TokenKind::LBracket)) {
      std::vector<ExprPtr> Indices;
      while (accept(TokenKind::LBracket)) {
        Indices.push_back(parseExpr());
        expect(TokenKind::RBracket, "after array index");
        if (failed())
          return nullptr;
      }
      return std::make_unique<ArrayRef>(Var->Name, std::move(Indices));
    }
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  if (check(TokenKind::IntLiteral))
    return std::make_unique<IntLit>(advance().IntValue);
  if (check(TokenKind::FloatLiteral))
    return std::make_unique<FloatLit>(advance().FloatValue);
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma) && !failed());
      }
      expect(TokenKind::RParen, "after call arguments");
      if (failed())
        return nullptr;
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args));
    }
    return std::make_unique<VarRef>(std::move(Name));
  }
  fail(std::string("unexpected token '") + tokenKindName(peek().Kind) +
       "' at line " + std::to_string(peek().Line));
  return nullptr;
}

std::optional<Program> nv::parseSource(const std::string &Source,
                                       std::string *ErrorOut) {
  Lexer L(Source);
  std::vector<Token> Tokens = L.lexAll();
  if (!L.error().empty()) {
    if (ErrorOut)
      *ErrorOut = L.error();
    return std::nullopt;
  }
  Parser P(std::move(Tokens));
  std::optional<Program> Prog = P.parseProgram();
  if (!Prog && ErrorOut)
    *ErrorOut = P.error();
  return Prog;
}
