//===- rl/Policy.cpp - PPO policy networks --------------------------------===//

#include "rl/Policy.h"

#include "nn/Distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace nv;

static int actionHeadWidth(ActionSpaceKind Kind,
                           const std::vector<int> &HeadSizes) {
  switch (Kind) {
  case ActionSpaceKind::Discrete: {
    int W = 0;
    for (int S : HeadSizes)
      W += S;
    return W;
  }
  case ActionSpaceKind::Continuous1:
    return 1;
  case ActionSpaceKind::Continuous2:
    return 2;
  }
  return 1;
}

static std::vector<int> makeTrunkSizes(int InputDim,
                                       const std::vector<int> &Hidden) {
  std::vector<int> Sizes = {InputDim};
  Sizes.insert(Sizes.end(), Hidden.begin(), Hidden.end());
  assert(Sizes.size() >= 2 && "policy needs at least one hidden layer");
  return Sizes;
}

Policy::Policy(ActionSpaceKind Kind, int InputDim, std::vector<int> Hidden,
               int NumVF, int NumIF, RNG &Rng, bool JointHeads)
    : Kind(Kind), InputDim(InputDim), NumVF(NumVF), NumIF(NumIF),
      JointHeads(JointHeads),
      HeadSizes(JointHeads ? std::vector<int>{NumVF, NumIF}
                           : std::vector<int>{NumVF}),
      Trunk(makeTrunkSizes(InputDim, Hidden), Activation::Tanh, Rng),
      ActionHead(Hidden.back(), actionHeadWidth(Kind, HeadSizes), Rng),
      ValueHead(Hidden.back(), 1, Rng),
      LogStd(1, actionHeadWidth(Kind, HeadSizes)) {
  // Continuous policies start with a healthy exploration stddev that
  // covers several action indices.
  LogStd.Value.fill(std::log(2.0));
  // Small initial head weights keep the initial policy near-uniform.
  ActionHead.W.Value *= 0.1;
}

int Policy::headOffset(int Head) const {
  int Offset = 0;
  for (int H = 0; H < Head; ++H)
    Offset += HeadSizes[H];
  return Offset;
}

int Policy::headSize(int Head) const { return HeadSizes[Head]; }

void Policy::forward(const Matrix &States, ThreadPool *Pool,
                     bool ForBackward) {
  // The trunk's last Linear has no built-in activation; fuse a tanh onto
  // it so heads see bounded features (standard RLlib FCNN behaviour).
  // backward() applies the matching derivative before Trunk.backward().
  Trunk.forwardInto(States, TrunkOut, Pool, /*ActivateLast=*/true,
                    ForBackward);
  ActionHead.forwardInto(TrunkOut, HeadOut, Activation::Identity, Pool,
                         ForBackward);
  ValueHead.forwardInto(TrunkOut, ValueOut, Activation::Identity, Pool,
                        ForBackward);
}

std::vector<double> Policy::headLogits(int Row, int Head) const {
  const int Offset = headOffset(Head);
  const int Size = headSize(Head);
  std::vector<double> Logits(Size);
  for (int I = 0; I < Size; ++I)
    Logits[I] = HeadOut.at(Row, Offset + I);
  return Logits;
}

/// Logit floor for illegal actions: exp(MaskedLogit - max) underflows to
/// exactly 0, so masked actions have probability 0 and contribute no
/// entropy or gradient (softmax helpers guard Probs > 0).
static constexpr double MaskedLogit = -1e30;

std::vector<double> Policy::maskedHeadLogits(int Row, int Head,
                                             const PlanMask *Mask,
                                             int VFIdx) const {
  std::vector<double> Logits = headLogits(Row, Head);
  if (!Mask || Mask->empty())
    return Logits;
  for (int I = 0; I < static_cast<int>(Logits.size()); ++I) {
    const bool Legal = Head == 0 ? Mask->vfLegal(I) : Mask->legal(VFIdx, I);
    if (!Legal)
      Logits[I] = MaskedLogit;
  }
  return Logits;
}

/// Nearest legal grid point for the continuous flavours: the rounded
/// sample is projected VF-first (closest legal VF row, ties toward the
/// safer lower index), then IF within that row.
static void projectToMask(int &VFIdx, int &IFIdx, const PlanMask &Mask) {
  if (Mask.empty() || Mask.legal(VFIdx, IFIdx))
    return;
  int BestVF = 0, BestDist = 1 << 30;
  for (int V = 0; V < Mask.NumVF; ++V) {
    if (!Mask.vfLegal(V))
      continue;
    const int Dist = std::abs(V - VFIdx);
    if (Dist < BestDist) {
      BestDist = Dist;
      BestVF = V;
    }
  }
  VFIdx = BestVF;
  int BestIF = 0;
  BestDist = 1 << 30;
  for (int I = 0; I < Mask.NumIF; ++I) {
    if (!Mask.legal(VFIdx, I))
      continue;
    const int Dist = std::abs(I - IFIdx);
    if (Dist < BestDist) {
      BestDist = Dist;
      BestIF = I;
    }
  }
  IFIdx = BestIF;
}

double Policy::value(int Row) const { return ValueOut.at(Row, 0); }

ActionRecord Policy::sampleAction(int Row, RNG &Rng, const PlanMask *Mask) {
  ActionRecord Rec;
  Rec.Value = value(Row);
  switch (Kind) {
  case ActionSpaceKind::Discrete: {
    Rec.VFIdx = sampleCategorical(maskedHeadLogits(Row, 0, Mask, 0), Rng);
    if (JointHeads)
      Rec.IFIdx = sampleCategorical(
          maskedHeadLogits(Row, 1, Mask, Rec.VFIdx), Rng);
    break;
  }
  case ActionSpaceKind::Continuous1: {
    Rec.Raw[0] = sampleGaussian(HeadOut.at(Row, 0), LogStd.Value.at(0, 0),
                                Rng);
    const int K = std::clamp<int>(
        static_cast<int>(std::lround(Rec.Raw[0])), 0, NumVF * NumIF - 1);
    Rec.VFIdx = K / NumIF;
    Rec.IFIdx = K % NumIF;
    if (Mask)
      projectToMask(Rec.VFIdx, Rec.IFIdx, *Mask);
    break;
  }
  case ActionSpaceKind::Continuous2: {
    Rec.Raw[0] = sampleGaussian(HeadOut.at(Row, 0), LogStd.Value.at(0, 0),
                                Rng);
    Rec.Raw[1] = sampleGaussian(HeadOut.at(Row, 1), LogStd.Value.at(0, 1),
                                Rng);
    Rec.VFIdx = std::clamp<int>(static_cast<int>(std::lround(Rec.Raw[0])),
                                0, NumVF - 1);
    Rec.IFIdx = std::clamp<int>(static_cast<int>(std::lround(Rec.Raw[1])),
                                0, NumIF - 1);
    if (Mask)
      projectToMask(Rec.VFIdx, Rec.IFIdx, *Mask);
    break;
  }
  }
  Rec.LogProb = logProb(Row, Rec, Mask);
  return Rec;
}

ActionRecord Policy::greedyAction(int Row, const PlanMask *Mask) {
  ActionRecord Rec;
  Rec.Value = value(Row);
  switch (Kind) {
  case ActionSpaceKind::Discrete:
    Rec.VFIdx = argmax(maskedHeadLogits(Row, 0, Mask, 0));
    if (JointHeads)
      Rec.IFIdx = argmax(maskedHeadLogits(Row, 1, Mask, Rec.VFIdx));
    break;
  case ActionSpaceKind::Continuous1: {
    Rec.Raw[0] = HeadOut.at(Row, 0);
    const int K = std::clamp<int>(
        static_cast<int>(std::lround(Rec.Raw[0])), 0, NumVF * NumIF - 1);
    Rec.VFIdx = K / NumIF;
    Rec.IFIdx = K % NumIF;
    if (Mask)
      projectToMask(Rec.VFIdx, Rec.IFIdx, *Mask);
    break;
  }
  case ActionSpaceKind::Continuous2:
    Rec.Raw[0] = HeadOut.at(Row, 0);
    Rec.Raw[1] = HeadOut.at(Row, 1);
    Rec.VFIdx = std::clamp<int>(static_cast<int>(std::lround(Rec.Raw[0])),
                                0, NumVF - 1);
    Rec.IFIdx = std::clamp<int>(static_cast<int>(std::lround(Rec.Raw[1])),
                                0, NumIF - 1);
    if (Mask)
      projectToMask(Rec.VFIdx, Rec.IFIdx, *Mask);
    break;
  }
  Rec.LogProb = logProb(Row, Rec, Mask);
  return Rec;
}

double Policy::logProb(int Row, const ActionRecord &Action,
                       const PlanMask *Mask) const {
  switch (Kind) {
  case ActionSpaceKind::Discrete: {
    double LP = logSoftmaxAt(maskedHeadLogits(Row, 0, Mask, 0),
                             Action.VFIdx);
    if (JointHeads)
      LP += logSoftmaxAt(maskedHeadLogits(Row, 1, Mask, Action.VFIdx),
                         Action.IFIdx);
    return LP;
  }
  case ActionSpaceKind::Continuous1:
    return gaussianLogProb(Action.Raw[0], HeadOut.at(Row, 0),
                           LogStd.Value.at(0, 0));
  case ActionSpaceKind::Continuous2:
    return gaussianLogProb(Action.Raw[0], HeadOut.at(Row, 0),
                           LogStd.Value.at(0, 0)) +
           gaussianLogProb(Action.Raw[1], HeadOut.at(Row, 1),
                           LogStd.Value.at(0, 1));
  }
  return 0.0;
}

double Policy::entropy(int Row, const PlanMask *Mask, int VFIdx) const {
  switch (Kind) {
  case ActionSpaceKind::Discrete: {
    double H = softmaxEntropy(maskedHeadLogits(Row, 0, Mask, 0));
    if (JointHeads)
      H += softmaxEntropy(maskedHeadLogits(Row, 1, Mask, VFIdx));
    return H;
  }
  case ActionSpaceKind::Continuous1:
    return gaussianEntropy(LogStd.Value.at(0, 0));
  case ActionSpaceKind::Continuous2:
    return gaussianEntropy(LogStd.Value.at(0, 0)) +
           gaussianEntropy(LogStd.Value.at(0, 1));
  }
  return 0.0;
}

Matrix Policy::backward(const std::vector<ActionRecord> &Actions,
                        const std::vector<double> &dLogProb,
                        const std::vector<double> &dValue,
                        double EntropyCoef,
                        const std::vector<PlanMask> *Masks) {
  const int Batch = TrunkOut.rows();
  assert(static_cast<int>(Actions.size()) == Batch &&
         static_cast<int>(dLogProb.size()) == Batch &&
         static_cast<int>(dValue.size()) == Batch &&
         "batch size mismatch in policy backward");
  assert((!Masks || static_cast<int>(Masks->size()) == Batch) &&
         "one mask per row required when masking");

  Matrix &dHead = Back.get(0, Batch, HeadOut.cols());
  Matrix &dVal = Back.get(1, Batch, 1);
  dHead.zero();
  dVal.zero();
  for (int Row = 0; Row < Batch; ++Row) {
    dVal.at(Row, 0) = dValue[Row];
    switch (Kind) {
    case ActionSpaceKind::Discrete: {
      const PlanMask *Mask =
          Masks && !(*Masks)[Row].empty() ? &(*Masks)[Row] : nullptr;
      const int NumHeads = static_cast<int>(HeadSizes.size());
      for (int Head = 0; Head < NumHeads; ++Head) {
        // Masked logits have probability exactly 0, so both the log-prob
        // and the entropy gradients below vanish on illegal entries.
        const std::vector<double> Logits =
            maskedHeadLogits(Row, Head, Mask, Actions[Row].VFIdx);
        const int Choice = Head == 0 ? Actions[Row].VFIdx
                                     : Actions[Row].IFIdx;
        const std::vector<double> LPGrad =
            categoricalLogProbGrad(Logits, Choice);
        // Entropy gradient: dH/dz_k = -p_k (log p_k + H).
        const std::vector<double> Probs = softmax(Logits);
        const double H = softmaxEntropy(Logits);
        const int Offset = headOffset(Head);
        for (int I = 0; I < headSize(Head); ++I) {
          double G = dLogProb[Row] * LPGrad[I];
          if (EntropyCoef != 0.0 && Probs[I] > 0.0)
            G += EntropyCoef * Probs[I] * (std::log(Probs[I]) + H);
          dHead.at(Row, Offset + I) += G;
        }
      }
      break;
    }
    case ActionSpaceKind::Continuous1:
    case ActionSpaceKind::Continuous2: {
      const int K = Kind == ActionSpaceKind::Continuous1 ? 1 : 2;
      for (int D = 0; D < K; ++D) {
        double dMean = 0.0, dLS = 0.0;
        gaussianLogProbGrad(Actions[Row].Raw[D], HeadOut.at(Row, D),
                            LogStd.Value.at(0, D), dMean, dLS);
        dHead.at(Row, D) += dLogProb[Row] * dMean;
        // Loss has -EntropyCoef * H and H = logstd + const.
        LogStd.Grad.at(0, D) += dLogProb[Row] * dLS - EntropyCoef;
      }
      break;
    }
    }
  }

  Matrix &dTrunkOut = Back.get(2, Batch, TrunkOut.cols());
  Matrix &dTrunkVal = Back.get(3, Batch, TrunkOut.cols());
  ActionHead.backwardInto(dHead, dTrunkOut);
  ValueHead.backwardInto(dVal, dTrunkVal);
  dTrunkOut += dTrunkVal;
  // tanh fused onto the trunk's last layer in forward().
  for (size_t I = 0; I < dTrunkOut.size(); ++I) {
    const double Y = TrunkOut.raw()[I];
    dTrunkOut.raw()[I] *= 1.0 - Y * Y;
  }
  return Trunk.backward(dTrunkOut);
}

std::vector<Param *> Policy::params() {
  std::vector<Param *> All = Trunk.params();
  for (Param *P : ActionHead.params())
    All.push_back(P);
  for (Param *P : ValueHead.params())
    All.push_back(P);
  if (Kind != ActionSpaceKind::Discrete)
    All.push_back(&LogStd);
  return All;
}

void Policy::quantizeForInference() {
  Trunk.quantizeForInference();
  ActionHead.quantizeForInference();
  ValueHead.quantizeForInference();
}

void Policy::clearQuantized() {
  Trunk.clearQuantized();
  ActionHead.clearQuantized();
  ValueHead.clearQuantized();
}

bool Policy::isQuantized() const {
  return Trunk.isQuantized() && ActionHead.isQuantized() &&
         ValueHead.isQuantized();
}

VectorPlan Policy::toPlan(const ActionRecord &Action,
                          const TargetInfo &TI) const {
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  VectorPlan Plan;
  Plan.VF = VFs[std::clamp<int>(Action.VFIdx, 0,
                                static_cast<int>(VFs.size()) - 1)];
  Plan.IF = IFs[std::clamp<int>(Action.IFIdx, 0,
                                static_cast<int>(IFs.size()) - 1)];
  return Plan;
}
