//===- rl/Env.h - The vectorization RL environment --------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contextual-bandit environment of the paper (§3.3): an episode is a
/// single step — observe a loop's embedding, pick (VF, IF), inject the
/// pragma, "compile and run", and collect
///
///     reward = (t_baseline - t_RL) / t_baseline            (Eq. 2)
///
/// with a penalty of -9 if compilation exceeds 10x the baseline compile
/// time (§3.4). Baseline times are precomputed per sample so training
/// steps cost one simulated compile+run.
///
//===----------------------------------------------------------------------===//

#ifndef NV_RL_ENV_H
#define NV_RL_ENV_H

#include "embedding/PathContext.h"
#include "lang/AST.h"
#include "lang/LoopExtractor.h"
#include "sim/Compiler.h"

#include <memory>
#include <string>
#include <vector>

namespace nv {

/// One dataset program loaded into the environment.
struct EnvSample {
  std::string Name;
  std::unique_ptr<Program> Prog;
  std::vector<LoopSite> Sites;
  /// Path contexts per site (state observations), extracted once.
  std::vector<std::vector<PathContext>> Contexts;
  double BaselineCycles = 0.0;
  /// Analysis cached by the simulated compiler so each training step is a
  /// plan evaluation, not a full re-compile.
  SimCompiler::Precompiled Pre;
};

/// The environment: a set of loop programs plus the simulated toolchain.
class VectorizationEnv {
public:
  VectorizationEnv(SimCompiler Compiler, PathContextConfig PathConfig)
      : Compiler(std::move(Compiler)), PathConfig(PathConfig) {}

  /// Ablation (§3.3): observe only the innermost loop's body instead of
  /// the outermost loop's. The paper found outer context works better.
  /// Changing the value re-extracts the contexts of every program already
  /// in the environment, so samples are never mixed-flavour (continued
  /// training after loading a model with the other setting would
  /// otherwise fine-tune on embeddings the model must never see). Not
  /// safe concurrently with rollouts.
  void setInnerContextOnly(bool Value);
  /// The active context-extraction selection. Serving must mirror it: the
  /// agent only ever saw embeddings extracted this way, so an annotation
  /// service embedding the other loop body would feed the policy states
  /// from a distribution it was never trained on (train/serve skew).
  bool innerContextOnly() const { return InnerContextOnly; }

  /// Ablation (§3.4): disable the compile-timeout penalty.
  void setTimeoutPenaltyEnabled(bool Value) { PenalizeTimeouts = Value; }

  /// Parses and adds \p Source; returns false (and ignores the program) if
  /// it does not parse or contains no loops.
  bool addProgram(const std::string &Name, const std::string &Source);

  size_t size() const { return Samples.size(); }
  const EnvSample &sample(size_t Index) const { return Samples[Index]; }
  const SimCompiler &compiler() const { return Compiler; }

  /// Legality verdict for site \p Site of sample \p Index (computed once
  /// at addProgram() time by precompile()).
  const LegalitySummary &legality(size_t Index, size_t Site) const {
    return Samples[Index].Pre.Legality[Site];
  }
  /// The legal-(VF, IF) action mask for site \p Site of sample \p Index —
  /// what the policy samples under so illegal plans are never rolled out.
  const PlanMask &actionMask(size_t Index, size_t Site) const {
    return Samples[Index].Pre.Legality[Site].Mask;
  }

  /// Penalty reward for a compile timeout (§3.4: "a penalty reward of -9").
  static constexpr double TimeoutPenalty = -9.0;

  /// Applies one (VF, IF) action per site of sample \p Index, compiles,
  /// runs, and returns the reward. \p Plans must have one entry per site.
  /// Const (pure plan evaluation), so concurrent rollout workers can step
  /// a shared environment without synchronization.
  double step(size_t Index, const std::vector<VectorPlan> &Plans) const;

  /// Execution cycles for sample \p Index under \p Plans (no reward
  /// shaping; used by the evaluation harnesses).
  double cyclesWith(size_t Index, const std::vector<VectorPlan> &Plans) const;

private:
  SimCompiler Compiler;
  PathContextConfig PathConfig;
  std::vector<EnvSample> Samples;
  bool InnerContextOnly = false;
  bool PenalizeTimeouts = true;
};

} // namespace nv

#endif // NV_RL_ENV_H
