//===- rl/PPO.h - Proximal Policy Optimization ------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-step (contextual bandit) PPO with the clipped surrogate
/// objective, a learned value baseline, and an entropy bonus — the
/// algorithm the paper drives through RLlib (§2.3, §4). Training is fully
/// end-to-end: the policy gradient w.r.t. the state flows back into the
/// code2vec embedding generator, so "the loop embedding is learned during
/// the end to end training with the RL agent".
///
//===----------------------------------------------------------------------===//

#ifndef NV_RL_PPO_H
#define NV_RL_PPO_H

#include "embedding/Code2Vec.h"
#include "nn/Optimizer.h"
#include "rl/Env.h"
#include "rl/Policy.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <vector>

namespace nv {

/// PPO hyperparameters. Defaults mirror the paper's §4 setup (lr 5e-5,
/// batch 4000); the bench harnesses sweep these (Fig 5).
struct PPOConfig {
  double LearningRate = 5e-5;
  int BatchSize = 4000;
  int MiniBatchSize = 128; ///< SGD minibatch (RLlib: sgd_minibatch_size).
  int Epochs = 3;
  double ClipEps = 0.3;
  double ValueCoef = 0.5;
  /// Entropy bonus, annealed linearly to FinalEntropyCoef over the course
  /// of train(): exploration early, specialization late.
  double EntropyCoef = 0.05;
  double FinalEntropyCoef = 0.0;
  double MaxGradNorm = 40.0;
  bool NormalizeAdvantages = true;

  /// Throws std::invalid_argument on an unusable configuration (e.g.
  /// BatchSize <= 0, MiniBatchSize > BatchSize, ClipEps <= 0). Called by
  /// PPORunner on construction so misconfigurations fail loudly instead of
  /// silently misbehaving.
  void validate() const;
};

/// One collected transition. Public (not a PPORunner detail) so external
/// collectors — the parallel rollout workers in train/ — can fill batches.
struct Transition {
  size_t SampleIdx = 0;
  size_t SiteIdx = 0;
  ActionRecord Action;
  double Reward = 0.0;
  /// The legality mask the action was sampled under (empty = unmasked).
  /// Carried to update time so ratio/entropy terms use the same masked
  /// distribution — masks are static per site, so replays are exact.
  PlanMask Mask;
};

/// Training curves sampled per batch (the paper's Figs 5-6 plot reward
/// mean and total training loss vs training steps).
struct TrainStats {
  Series RewardMean{"reward_mean"};
  Series Loss{"total_loss"};
  double FinalRewardMean = 0.0;
  long long Steps = 0;
};

/// Orchestrates environment, embedding generator, policy, and optimizer.
class PPORunner {
public:
  /// Throws std::invalid_argument if \p Config fails validate().
  PPORunner(VectorizationEnv &Env, Code2Vec &Embedder, Policy &Pol,
            const PPOConfig &Config, uint64_t Seed);

  /// Trains for (at least) \p TotalSteps environment steps, i.e.
  /// compilations (the x-axis of Figs 5-6). Serial collection; the
  /// parallel path is train/Trainer, which fills batches with rollout
  /// workers and feeds them to trainOnBatch().
  TrainStats train(long long TotalSteps);

  /// Collects (at least) Config.BatchSize transitions serially with the
  /// runner's own RNG (the single-threaded rollout path).
  std::vector<Transition> collectBatch();

  /// Applies one PPO update to an externally collected batch: folds the
  /// batch's mean reward into the running reward EMA, then runs the
  /// clipped-surrogate minibatch epochs. Returns the mean total loss.
  double trainOnBatch(const std::vector<Transition> &Batch,
                      double EntropyCoef);

  /// Optional pool for the NN math kernels (encode/forward/update GEMMs).
  /// Safe for the determinism contract: the blocked kernels are
  /// bit-identical at any pool size. Default is serial (nullptr).
  void setMathPool(ThreadPool *Pool) { MathPool = Pool; }

  /// Greedy factors for a raw context bag (inference path).
  VectorPlan predict(const std::vector<PathContext> &Contexts);

  /// Greedy factors for every site of env sample \p Index.
  std::vector<VectorPlan> predictSample(size_t Index);

  VectorizationEnv &env() { return Env; }
  Policy &policy() { return Pol; }
  Code2Vec &embedder() { return Embedder; }
  const PPOConfig &config() const { return Config; }

  /// Every learnable parameter (policy first, then embedder) in the order
  /// the optimizer steps them — the canonical order for checkpointing.
  std::vector<Param *> trainableParams();

  /// Mutable internals exposed for train/TrainCheckpoint: a resumed run is
  /// bit-reproducible only if optimizer moments, RNG state, and the reward
  /// EMA all survive the round trip.
  Adam &optimizer() { return Optimizer; }
  RNG &rng() { return Rng; }
  EMA &rewardEMA() { return RewardEMA; }

private:
  double update(const std::vector<Transition> &Batch, double EntropyCoef);

  VectorizationEnv &Env;
  Code2Vec &Embedder;
  Policy &Pol;
  PPOConfig Config;
  Adam Optimizer;
  RNG Rng;
  EMA RewardEMA{0.1};
  ThreadPool *MathPool = nullptr;
  Matrix StatesBuf; ///< Reused encode output (allocation-free forwards).
  /// Reused widened-state buffer and digest scratch for policies built
  /// with legality features (see rl/StateFeatures.h); untouched otherwise.
  Matrix WideStatesBuf;
  Matrix NarrowGradBuf; ///< dStates minus the feature columns.
  std::vector<LegalityDigest> DigestBuf;
};

} // namespace nv

#endif // NV_RL_PPO_H
