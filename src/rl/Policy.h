//===- rl/Policy.h - PPO policy networks ------------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The agent networks. A shared FCNN trunk (default 64x64 tanh, §4) feeds
/// a value head and an action head in one of the paper's three action-space
/// flavours (Fig 6):
///
///  1. Discrete  — two categorical heads index the VF and IF arrays
///     ("the agent picks 2 integer numbers"). The paper found one network
///     predicting both factors beats two independent agents (§3.3); the
///     two-agent variant remains constructible for the ablation bench.
///  2. Continuous1 — one Gaussian number encodes the joint (VF, IF) index.
///  3. Continuous2 — two Gaussian numbers, one per factor.
///
//===----------------------------------------------------------------------===//

#ifndef NV_RL_POLICY_H
#define NV_RL_POLICY_H

#include "ir/Legality.h"
#include "nn/Layers.h"
#include "target/CostModel.h"
#include "target/TargetInfo.h"

#include <vector>

namespace nv {

/// Action-space flavours from Fig 6.
enum class ActionSpaceKind { Discrete, Continuous1, Continuous2 };

/// One sampled action with everything PPO needs to recompute ratios.
struct ActionRecord {
  int VFIdx = 0;
  int IFIdx = 0;
  double Raw[2] = {0.0, 0.0}; ///< Unrounded samples (continuous spaces).
  double LogProb = 0.0;
  double Value = 0.0; ///< Critic value at sampling time.
};

/// Policy + value network.
class Policy {
public:
  /// \p Heads selects which factors this network predicts: {NumVF, NumIF}
  /// for the joint agent, {NumVF} or {NumIF} for the two-agent ablation.
  /// Continuous kinds ignore \p Heads and emit 1 or 2 Gaussians.
  Policy(ActionSpaceKind Kind, int InputDim, std::vector<int> Hidden,
         int NumVF, int NumIF, RNG &Rng, bool JointHeads = true);

  ActionSpaceKind kind() const { return Kind; }
  int numVF() const { return NumVF; }
  int numIF() const { return NumIF; }
  /// Width of the state rows forward() expects. Larger than the embedder's
  /// codeDim() exactly when the model was built with legality features.
  int inputDim() const { return InputDim; }

  /// Runs the trunk + heads on a batch (B x InputDim); caches activations.
  /// Allocation-free once warm (member buffers + fused kernels); when
  /// \p Pool is given the GEMMs run row-panel-parallel with bit-identical
  /// results at any pool size. \p ForBackward = false skips the per-layer
  /// input caching (sampling/greedy inference; backward() then requires a
  /// ForBackward pass first).
  void forward(const Matrix &States, ThreadPool *Pool = nullptr,
               bool ForBackward = true);

  /// Samples an action for batch row \p Row from the last forward(). With
  /// a non-empty \p Mask, illegal actions are excluded: discrete heads get
  /// -inf logits (the VF head keeps only VFs with a legal IF, the IF head
  /// is conditioned on the sampled VF), continuous samples are projected
  /// to the nearest legal grid point after rounding (Raw and LogProb stay
  /// untouched — the projection is environment dynamics, not policy).
  ActionRecord sampleAction(int Row, RNG &Rng,
                            const PlanMask *Mask = nullptr);

  /// Greedy (mode) action for batch row \p Row (inference, §4: "inference
  /// ... requires a single step only"). Masking as in sampleAction().
  ActionRecord greedyAction(int Row, const PlanMask *Mask = nullptr);

  /// Log-probability of \p Action under the *current* forward() outputs.
  /// \p Mask must be the mask the action was sampled under (or null).
  double logProb(int Row, const ActionRecord &Action,
                 const PlanMask *Mask = nullptr) const;

  /// Policy entropy at batch row \p Row. Under a mask the IF head is
  /// conditioned on \p VFIdx (the sampled VF of this row's action).
  double entropy(int Row, const PlanMask *Mask = nullptr,
                 int VFIdx = 0) const;

  /// Critic value at batch row \p Row.
  double value(int Row) const;

  /// Backpropagates. \p dLogProb is dLoss/dlogpi per row, \p dValue is
  /// dLoss/dV per row, \p EntropyCoef adds -coef * dH/dparams. \p Actions
  /// must be the records whose logProb was differentiated. \p Masks, when
  /// given, holds one PlanMask per row (empty = unmasked) matching the
  /// masks the log-probs were computed under; masked logits receive zero
  /// gradient. Returns dLoss/dStates for end-to-end training of the
  /// embedding generator.
  Matrix backward(const std::vector<ActionRecord> &Actions,
                  const std::vector<double> &dLogProb,
                  const std::vector<double> &dValue, double EntropyCoef,
                  const std::vector<PlanMask> *Masks = nullptr);

  std::vector<Param *> params();

  /// Builds (or refreshes) the int8 shadows of the trunk and both heads.
  /// Inference forwards (ForBackward = false) then run int8; training
  /// forwards stay fp32. Must be re-run after weight updates.
  void quantizeForInference();
  void clearQuantized();
  bool isQuantized() const;

  /// Maps an ActionRecord to concrete factors given the action arrays.
  VectorPlan toPlan(const ActionRecord &Action, const TargetInfo &TI) const;

private:
  std::vector<double> headLogits(int Row, int Head) const;
  std::vector<double> maskedHeadLogits(int Row, int Head,
                                       const PlanMask *Mask,
                                       int VFIdx) const;
  int headOffset(int Head) const;
  int headSize(int Head) const;

  ActionSpaceKind Kind;
  int InputDim;
  int NumVF, NumIF;
  bool JointHeads;
  std::vector<int> HeadSizes; ///< Discrete: logit widths per head.

  MLP Trunk;
  LinearLayer ActionHead; ///< Logits (discrete) or means (continuous).
  LinearLayer ValueHead;
  Param LogStd; ///< (1 x K) state-independent log stddev (continuous).

  Matrix TrunkOut;  ///< Cached (B x H).
  Matrix HeadOut;   ///< Cached (B x logits/means).
  Matrix ValueOut;  ///< Cached (B x 1).
  Workspace Back;   ///< Backward scratch (head/value gradients).
};

} // namespace nv

#endif // NV_RL_POLICY_H
