//===- rl/Policy.h - PPO policy networks ------------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The agent networks. A shared FCNN trunk (default 64x64 tanh, §4) feeds
/// a value head and an action head in one of the paper's three action-space
/// flavours (Fig 6):
///
///  1. Discrete  — two categorical heads index the VF and IF arrays
///     ("the agent picks 2 integer numbers"). The paper found one network
///     predicting both factors beats two independent agents (§3.3); the
///     two-agent variant remains constructible for the ablation bench.
///  2. Continuous1 — one Gaussian number encodes the joint (VF, IF) index.
///  3. Continuous2 — two Gaussian numbers, one per factor.
///
//===----------------------------------------------------------------------===//

#ifndef NV_RL_POLICY_H
#define NV_RL_POLICY_H

#include "nn/Layers.h"
#include "target/CostModel.h"
#include "target/TargetInfo.h"

#include <vector>

namespace nv {

/// Action-space flavours from Fig 6.
enum class ActionSpaceKind { Discrete, Continuous1, Continuous2 };

/// One sampled action with everything PPO needs to recompute ratios.
struct ActionRecord {
  int VFIdx = 0;
  int IFIdx = 0;
  double Raw[2] = {0.0, 0.0}; ///< Unrounded samples (continuous spaces).
  double LogProb = 0.0;
  double Value = 0.0; ///< Critic value at sampling time.
};

/// Policy + value network.
class Policy {
public:
  /// \p Heads selects which factors this network predicts: {NumVF, NumIF}
  /// for the joint agent, {NumVF} or {NumIF} for the two-agent ablation.
  /// Continuous kinds ignore \p Heads and emit 1 or 2 Gaussians.
  Policy(ActionSpaceKind Kind, int InputDim, std::vector<int> Hidden,
         int NumVF, int NumIF, RNG &Rng, bool JointHeads = true);

  ActionSpaceKind kind() const { return Kind; }
  int numVF() const { return NumVF; }
  int numIF() const { return NumIF; }

  /// Runs the trunk + heads on a batch (B x InputDim); caches activations.
  /// Allocation-free once warm (member buffers + fused kernels); when
  /// \p Pool is given the GEMMs run row-panel-parallel with bit-identical
  /// results at any pool size. \p ForBackward = false skips the per-layer
  /// input caching (sampling/greedy inference; backward() then requires a
  /// ForBackward pass first).
  void forward(const Matrix &States, ThreadPool *Pool = nullptr,
               bool ForBackward = true);

  /// Samples an action for batch row \p Row from the last forward().
  ActionRecord sampleAction(int Row, RNG &Rng);

  /// Greedy (mode) action for batch row \p Row (inference, §4: "inference
  /// ... requires a single step only").
  ActionRecord greedyAction(int Row);

  /// Log-probability of \p Action under the *current* forward() outputs.
  double logProb(int Row, const ActionRecord &Action) const;

  /// Policy entropy at batch row \p Row.
  double entropy(int Row) const;

  /// Critic value at batch row \p Row.
  double value(int Row) const;

  /// Backpropagates. \p dLogProb is dLoss/dlogpi per row, \p dValue is
  /// dLoss/dV per row, \p EntropyCoef adds -coef * dH/dparams. \p Actions
  /// must be the records whose logProb was differentiated. Returns
  /// dLoss/dStates for end-to-end training of the embedding generator.
  Matrix backward(const std::vector<ActionRecord> &Actions,
                  const std::vector<double> &dLogProb,
                  const std::vector<double> &dValue, double EntropyCoef);

  std::vector<Param *> params();

  /// Maps an ActionRecord to concrete factors given the action arrays.
  VectorPlan toPlan(const ActionRecord &Action, const TargetInfo &TI) const;

private:
  std::vector<double> headLogits(int Row, int Head) const;
  int headOffset(int Head) const;
  int headSize(int Head) const;

  ActionSpaceKind Kind;
  int NumVF, NumIF;
  bool JointHeads;
  std::vector<int> HeadSizes; ///< Discrete: logit widths per head.

  MLP Trunk;
  LinearLayer ActionHead; ///< Logits (discrete) or means (continuous).
  LinearLayer ValueHead;
  Param LogStd; ///< (1 x K) state-independent log stddev (continuous).

  Matrix TrunkOut;  ///< Cached (B x H).
  Matrix HeadOut;   ///< Cached (B x logits/means).
  Matrix ValueOut;  ///< Cached (B x 1).
  Workspace Back;   ///< Backward scratch (head/value gradients).
};

} // namespace nv

#endif // NV_RL_POLICY_H
