//===- rl/StateFeatures.h - Legality-feature state widening -----*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place encoded states grow their optional legality-feature
/// columns. A policy built with LegalityFeatures expects rows of
/// codeDim + NumLegalityFeatures; every forward site (PPO, rollout
/// workers, evaluator, serving) funnels its encode output through
/// widenStates() so the layout — code embedding first, then the
/// legalityFeatures() block — is defined exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef NV_RL_STATEFEATURES_H
#define NV_RL_STATEFEATURES_H

#include "ir/Legality.h"
#include "nn/Matrix.h"
#include "target/TargetInfo.h"

#include <algorithm>
#include <cassert>

namespace nv {

/// Returns the matrix a policy expecting \p WantCols-wide rows should
/// consume. When \p States is already wide enough it is returned as-is
/// (the common, feature-free configuration — zero cost). Otherwise each
/// row is copied into \p WideBuf and the trailing columns are filled from
/// \p Digests (one per row; null fills zeros — the raw-context inference
/// path, where no loop analysis exists).
inline const Matrix &widenStates(const Matrix &States, int WantCols,
                                 const LegalityDigest *Digests,
                                 size_t NumDigests, const TargetInfo &TI,
                                 Matrix &WideBuf) {
  if (WantCols <= States.cols())
    return States;
  assert(WantCols == States.cols() + NumLegalityFeatures &&
         "policy input width must be codeDim or codeDim + legality block");
  const int B = States.rows();
  const int Narrow = States.cols();
  WideBuf.resize(B, WantCols);
  double Feats[NumLegalityFeatures];
  for (int R = 0; R < B; ++R) {
    const double *Src = States.rowPtr(R);
    double *Dst = WideBuf.rowPtr(R);
    std::copy(Src, Src + Narrow, Dst);
    if (Digests && static_cast<size_t>(R) < NumDigests) {
      legalityFeatures(Digests[R], TI, Feats);
      std::copy(Feats, Feats + NumLegalityFeatures, Dst + Narrow);
    } else {
      std::fill(Dst + Narrow, Dst + WantCols, 0.0);
    }
  }
  return WideBuf;
}

} // namespace nv

#endif // NV_RL_STATEFEATURES_H
