//===- rl/Env.cpp - The vectorization RL environment -----------------------===//

#include "rl/Env.h"

#include "lang/Parser.h"

#include <cassert>

using namespace nv;

void VectorizationEnv::setInnerContextOnly(bool Value) {
  if (Value == InnerContextOnly)
    return;
  InnerContextOnly = Value;
  for (EnvSample &Sample : Samples) {
    Sample.Contexts.clear();
    for (const LoopSite &Site : Sample.Sites)
      Sample.Contexts.push_back(extractPathContexts(
          InnerContextOnly ? *Site.Inner : *Site.Outer, PathConfig));
  }
}

bool VectorizationEnv::addProgram(const std::string &Name,
                                  const std::string &Source) {
  std::string Error;
  std::optional<Program> Parsed = parseSource(Source, &Error);
  if (!Parsed)
    return false;

  EnvSample Sample;
  Sample.Name = Name;
  Sample.Prog = std::make_unique<Program>();
  Sample.Prog->Globals = std::move(Parsed->Globals);
  Sample.Prog->Functions = std::move(Parsed->Functions);
  clearAllPragmas(*Sample.Prog);
  Sample.Sites = extractLoops(*Sample.Prog);
  if (Sample.Sites.empty())
    return false;

  for (const LoopSite &Site : Sample.Sites)
    Sample.Contexts.push_back(extractPathContexts(
        InnerContextOnly ? *Site.Inner : *Site.Outer, PathConfig));

  Sample.Pre = Compiler.precompile(*Sample.Prog);
  Sample.BaselineCycles = Sample.Pre.BaselineExecutionCycles;
  Samples.push_back(std::move(Sample));
  return true;
}

double VectorizationEnv::step(size_t Index,
                              const std::vector<VectorPlan> &Plans) const {
  assert(Index < Samples.size() && "sample index out of range");
  const EnvSample &Sample = Samples[Index];
  assert(Plans.size() == Sample.Sites.size() &&
         "one plan per vectorization site required");

  bool TimedOut = false;
  const double Cycles =
      Compiler.runPrecompiled(Sample.Pre, Plans, TimedOut);
  if (TimedOut && PenalizeTimeouts)
    return TimeoutPenalty;
  const double TBase = Sample.BaselineCycles;
  assert(TBase > 0.0 && "baseline time must be positive");
  // Slowdowns beyond the timeout-equivalent penalty are clipped: the
  // paper's -9 corresponds to "ten times the execution time of the
  // baseline", the worst outcome it models.
  return std::max((TBase - Cycles) / TBase, TimeoutPenalty);
}

double VectorizationEnv::cyclesWith(
    size_t Index, const std::vector<VectorPlan> &Plans) const {
  assert(Index < Samples.size() && "sample index out of range");
  const EnvSample &Sample = Samples[Index];
  assert(Plans.size() == Sample.Sites.size() &&
         "one plan per vectorization site required");
  bool TimedOut = false;
  return Compiler.runPrecompiled(Sample.Pre, Plans, TimedOut);
}
