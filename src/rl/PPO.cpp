//===- rl/PPO.cpp - Proximal Policy Optimization ---------------------------===//

#include "rl/PPO.h"

#include "rl/StateFeatures.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

using namespace nv;

void PPOConfig::validate() const {
  if (BatchSize <= 0)
    throw std::invalid_argument("PPOConfig: BatchSize must be positive");
  if (MiniBatchSize <= 0)
    throw std::invalid_argument("PPOConfig: MiniBatchSize must be positive");
  if (MiniBatchSize > BatchSize)
    throw std::invalid_argument(
        "PPOConfig: MiniBatchSize must not exceed BatchSize");
  if (Epochs <= 0)
    throw std::invalid_argument("PPOConfig: Epochs must be positive");
  if (ClipEps <= 0.0)
    throw std::invalid_argument("PPOConfig: ClipEps must be positive");
  if (LearningRate <= 0.0)
    throw std::invalid_argument("PPOConfig: LearningRate must be positive");
  if (MaxGradNorm <= 0.0)
    throw std::invalid_argument("PPOConfig: MaxGradNorm must be positive");
  if (EntropyCoef < 0.0 || FinalEntropyCoef < 0.0)
    throw std::invalid_argument(
        "PPOConfig: entropy coefficients must be non-negative");
}

PPORunner::PPORunner(VectorizationEnv &Env, Code2Vec &Embedder, Policy &Pol,
                     const PPOConfig &Config, uint64_t Seed)
    : Env(Env), Embedder(Embedder), Pol(Pol), Config(Config),
      Optimizer(Config.LearningRate), Rng(Seed) {
  Config.validate();
}

std::vector<Param *> PPORunner::trainableParams() {
  std::vector<Param *> AllParams = Pol.params();
  for (Param *P : Embedder.params())
    AllParams.push_back(P);
  return AllParams;
}

std::vector<Transition> PPORunner::collectBatch() {
  std::vector<Transition> Batch;
  Batch.reserve(Config.BatchSize);
  const TargetInfo &TI = Env.compiler().target();

  while (static_cast<int>(Batch.size()) < Config.BatchSize) {
    const size_t SampleIdx = Rng.nextBounded(Env.size());
    const EnvSample &Sample = Env.sample(SampleIdx);
    const size_t NumSites = Sample.Sites.size();

    // Encode all sites of this program and act on each. Rollout forwards
    // never backprop (update() re-forwards per minibatch), so skip the
    // backward caches.
    Embedder.encodeBatchInto(Sample.Contexts, StatesBuf, MathPool);
    DigestBuf.clear();
    for (size_t S = 0; S < NumSites; ++S)
      DigestBuf.push_back(Env.legality(SampleIdx, S).digest());
    const Matrix &States =
        widenStates(StatesBuf, Pol.inputDim(), DigestBuf.data(),
                    DigestBuf.size(), TI, WideStatesBuf);
    Pol.forward(States, MathPool, /*ForBackward=*/false);

    std::vector<VectorPlan> Plans(NumSites);
    std::vector<ActionRecord> Actions(NumSites);
    for (size_t S = 0; S < NumSites; ++S) {
      const PlanMask &Mask = Env.actionMask(SampleIdx, S);
      Actions[S] = Pol.sampleAction(static_cast<int>(S), Rng, &Mask);
      Plans[S] = Pol.toPlan(Actions[S], TI);
    }
    const double Reward = Env.step(SampleIdx, Plans);

    for (size_t S = 0; S < NumSites; ++S) {
      Transition T;
      T.SampleIdx = SampleIdx;
      T.SiteIdx = S;
      T.Action = Actions[S];
      T.Reward = Reward;
      T.Mask = Env.actionMask(SampleIdx, S);
      Batch.push_back(T);
    }
  }
  return Batch;
}

double PPORunner::update(const std::vector<Transition> &Batch,
                         double EntropyCoef) {
  const int B = static_cast<int>(Batch.size());

  // Advantages from the sampling-time critic (single-step episodes:
  // A = r - V(s)).
  std::vector<double> Advantages(B);
  for (int I = 0; I < B; ++I)
    Advantages[I] = Batch[I].Reward - Batch[I].Action.Value;
  if (Config.NormalizeAdvantages && B > 1) {
    const double Mean = nv::mean(Advantages);
    double Std = nv::stddev(Advantages);
    if (Std < 1e-6)
      Std = 1.0;
    for (double &A : Advantages)
      A = (A - Mean) / Std;
  }

  // Gather the state contexts (and legality digests, for feature-widened
  // policies) once.
  std::vector<std::vector<PathContext>> Contexts;
  std::vector<LegalityDigest> Digests;
  Contexts.reserve(B);
  Digests.reserve(B);
  for (const Transition &T : Batch) {
    Contexts.push_back(Env.sample(T.SampleIdx).Contexts[T.SiteIdx]);
    Digests.push_back(Env.legality(T.SampleIdx, T.SiteIdx).digest());
  }

  std::vector<Param *> AllParams = trainableParams();

  // Minibatched SGD epochs over the batch (RLlib-style).
  std::vector<int> Order(B);
  for (int I = 0; I < B; ++I)
    Order[I] = I;
  const int MB = std::max(1, std::min(Config.MiniBatchSize, B));

  double TotalLoss = 0.0;
  int NumMinibatches = 0;
  for (int Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    Rng.shuffle(Order);
    for (int Start = 0; Start < B; Start += MB) {
      const int End = std::min(Start + MB, B);
      const int M = End - Start;

      for (Param *P : AllParams)
        P->zeroGrad();

      std::vector<std::vector<PathContext>> MiniContexts;
      MiniContexts.reserve(M);
      DigestBuf.clear();
      for (int I = Start; I < End; ++I) {
        MiniContexts.push_back(Contexts[Order[I]]);
        DigestBuf.push_back(Digests[Order[I]]);
      }
      Embedder.encodeBatchInto(MiniContexts, StatesBuf, MathPool);
      const Matrix &States = widenStates(
          StatesBuf, Pol.inputDim(), DigestBuf.data(), DigestBuf.size(),
          Env.compiler().target(), WideStatesBuf);
      Pol.forward(States, MathPool);

      std::vector<ActionRecord> Actions(M);
      std::vector<PlanMask> Masks(M);
      std::vector<double> dLogProb(M, 0.0), dValue(M, 0.0);
      double PolicyLoss = 0.0, ValueLoss = 0.0, EntropyTerm = 0.0;
      for (int I = 0; I < M; ++I) {
        const Transition &T = Batch[Order[Start + I]];
        Actions[I] = T.Action;
        Masks[I] = T.Mask;
        const PlanMask *Mask = T.Mask.empty() ? nullptr : &Masks[I];
        const double LogPNew = Pol.logProb(I, Actions[I], Mask);
        const double Ratio = std::exp(
            std::clamp(LogPNew - T.Action.LogProb, -20.0, 20.0));
        const double A = Advantages[Order[Start + I]];
        const double Unclipped = Ratio * A;
        const double Clipped =
            std::clamp(Ratio, 1.0 - Config.ClipEps, 1.0 + Config.ClipEps) *
            A;
        PolicyLoss += -std::min(Unclipped, Clipped);
        // Gradient flows only through the unclipped branch when active.
        if (Unclipped <= Clipped)
          dLogProb[I] = -A * Ratio / M;

        const double V = Pol.value(I);
        ValueLoss += 0.5 * (V - T.Reward) * (V - T.Reward);
        dValue[I] = Config.ValueCoef * (V - T.Reward) / M;

        EntropyTerm += Pol.entropy(I, Mask, Actions[I].VFIdx);
      }
      PolicyLoss /= M;
      ValueLoss /= M;
      EntropyTerm /= M;
      TotalLoss += PolicyLoss + Config.ValueCoef * ValueLoss -
                   EntropyCoef * EntropyTerm;
      ++NumMinibatches;

      Matrix dStates =
          Pol.backward(Actions, dLogProb, dValue, EntropyCoef / M, &Masks);
      if (dStates.cols() > StatesBuf.cols()) {
        // The legality-feature columns are analysis inputs, not learned
        // state: drop their gradient and backprop the embedding block.
        NarrowGradBuf.resize(dStates.rows(), StatesBuf.cols());
        for (int R = 0; R < dStates.rows(); ++R)
          std::copy(dStates.rowPtr(R), dStates.rowPtr(R) + StatesBuf.cols(),
                    NarrowGradBuf.rowPtr(R));
        Embedder.backward(NarrowGradBuf);
      } else {
        Embedder.backward(dStates);
      }
      clipGradNorm(AllParams, Config.MaxGradNorm);
      Optimizer.step(AllParams);
    }
  }
  return TotalLoss / std::max(1, NumMinibatches);
}

double PPORunner::trainOnBatch(const std::vector<Transition> &Batch,
                               double EntropyCoef) {
  assert(!Batch.empty() && "trainOnBatch() requires a non-empty batch");
  double BatchReward = 0.0;
  for (const Transition &T : Batch)
    BatchReward += T.Reward;
  BatchReward /= static_cast<double>(Batch.size());
  RewardEMA.add(BatchReward);
  return update(Batch, EntropyCoef);
}

TrainStats PPORunner::train(long long TotalSteps) {
  assert(Env.size() > 0 && "environment has no samples");
  TrainStats Stats;
  long long Steps = 0;
  while (Steps < TotalSteps) {
    std::vector<Transition> Batch = collectBatch();
    Steps += Config.BatchSize;

    // Linear entropy annealing across the training budget.
    const double Progress =
        std::min(1.0, static_cast<double>(Steps) /
                          std::max<long long>(1, TotalSteps));
    const double EntropyCoef =
        Config.EntropyCoef +
        (Config.FinalEntropyCoef - Config.EntropyCoef) * Progress;
    const double Loss = trainOnBatch(Batch, EntropyCoef);
    Stats.RewardMean.add(static_cast<double>(Steps), RewardEMA.value());
    Stats.Loss.add(static_cast<double>(Steps), Loss);
    Stats.FinalRewardMean = RewardEMA.value();
  }
  Stats.Steps = Steps;
  return Stats;
}

VectorPlan PPORunner::predict(const std::vector<PathContext> &Contexts) {
  Embedder.encodeBatchInto({Contexts}, StatesBuf, MathPool);
  // Raw-bag inference has no loop analysis: feature columns are zeros.
  const Matrix &States =
      widenStates(StatesBuf, Pol.inputDim(), nullptr, 0,
                  Env.compiler().target(), WideStatesBuf);
  Pol.forward(States, MathPool, /*ForBackward=*/false);
  return Pol.toPlan(Pol.greedyAction(0), Env.compiler().target());
}

std::vector<VectorPlan> PPORunner::predictSample(size_t Index) {
  const EnvSample &Sample = Env.sample(Index);
  Embedder.encodeBatchInto(Sample.Contexts, StatesBuf, MathPool);
  DigestBuf.clear();
  for (size_t S = 0; S < Sample.Sites.size(); ++S)
    DigestBuf.push_back(Env.legality(Index, S).digest());
  const Matrix &States =
      widenStates(StatesBuf, Pol.inputDim(), DigestBuf.data(),
                  DigestBuf.size(), Env.compiler().target(), WideStatesBuf);
  Pol.forward(States, MathPool, /*ForBackward=*/false);
  std::vector<VectorPlan> Plans;
  Plans.reserve(Sample.Sites.size());
  for (size_t S = 0; S < Sample.Sites.size(); ++S) {
    const PlanMask &Mask = Env.actionMask(Index, S);
    Plans.push_back(Pol.toPlan(Pol.greedyAction(static_cast<int>(S), &Mask),
                               Env.compiler().target()));
  }
  return Plans;
}
