//===- embedding/PathContext.h - AST path-context extraction ----*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// code2vec-style decomposition of a loop's AST into path contexts: every
/// pair of terminal tokens together with the syntactic path between them
/// ("Code is first decomposed to a collection of paths in its abstract
/// syntax tree", §3.1). The embedding network learns a vector per token and
/// per path and aggregates them with attention (see Code2Vec.h).
///
/// The extractor is the serving layer's cold-path bottleneck, so it runs
/// allocation-free: the AST is flattened into POD nodes whose labels and
/// terminal tokens are interned symbols (support/Interner.h), root-path
/// label sequences carry precomputed prefix hashes, and each pair's path
/// hash is an O(1) combination of two prefix states — no std::string is
/// built or hashed per pair. All scratch lives in a reusable per-thread
/// embedding/ContextBuffer arena (extractPathContextsInto); the allocating
/// extractPathContexts wrapper remains for the training environment and
/// tests.
///
/// Vocabulary hashing. A token's vocab id is hashToVocab(fnv1a(token));
/// a path's vocab id is hashToVocab over the structural path hash built
/// from pathHashPush/pathHashCombine below. Distinct tokens (or paths)
/// may collide into one vocab id — that is by design (hashing-trick
/// embeddings: colliding strings share a row and the training process
/// absorbs it), but the *mapping* is pinned by tests
/// (EmbeddingTest.PinnedVocabHashes) so refactors cannot silently
/// re-bucket a trained model's vocabulary.
///
//===----------------------------------------------------------------------===//

#ifndef NV_EMBEDDING_PATHCONTEXT_H
#define NV_EMBEDDING_PATHCONTEXT_H

#include "lang/AST.h"
#include "support/StringUtils.h"

#include <string>
#include <vector>

namespace nv {

class ContextBuffer;

/// One (source token, path, target token) triple, already hashed into
/// vocabulary ids.
struct PathContext {
  int SrcToken = 0;
  int Path = 0;
  int DstToken = 0;
};

/// A borrowed, contiguous run of path contexts (typically into a
/// ContextBuffer or a WorkItem's flat storage). Plain pointer + size so
/// the serving layer can hand bags to the embedder without copying them.
struct ContextSpan {
  const PathContext *Data = nullptr;
  size_t Size = 0;

  bool empty() const { return Size == 0; }
  const PathContext *begin() const { return Data; }
  const PathContext *end() const { return Data + Size; }
};

/// Extraction and vocabulary parameters.
struct PathContextConfig {
  int TokenVocabSize = 2048;
  int PathVocabSize = 4096;
  int MaxPathLength = 9;   ///< Node count cap on a path (else skipped).
  int MaxContexts = 96;   ///< Per-snippet cap (deterministic subsample).
};

/// Extracts path contexts from the statement subtree \p S (typically the
/// outermost loop of a vectorization site, per §3.3). Allocating
/// convenience wrapper over extractPathContextsInto (thread-local buffer).
std::vector<PathContext> extractPathContexts(const Stmt &S,
                                             const PathContextConfig &Config);

/// Allocation-free extraction into \p Buf's reusable arena. The returned
/// span points into \p Buf and is valid until the next extraction with the
/// same buffer. Produces exactly the same contexts as extractPathContexts.
ContextSpan extractPathContextsInto(const Stmt &S,
                                    const PathContextConfig &Config,
                                    ContextBuffer &Buf);

/// Maps a 64-bit hash onto [0, VocabSize). An xor-fold + multiply mix
/// spreads the high bits down (plain `%` on a power-of-two vocabulary kept
/// only FNV-1a's weakest low bits), and the final Lemire multiply-shift is
/// bias-free for every vocabulary size (`%` over-selects the low residues
/// whenever VocabSize does not divide 2^64).
inline int hashToVocab(uint64_t Hash, int VocabSize) {
  uint64_t H = Hash ^ (Hash >> 32);
  H *= 0x9E3779B97F4A7C15ull;
  H ^= H >> 29;
  return static_cast<int>(
      (static_cast<unsigned __int128>(H) *
       static_cast<unsigned __int128>(static_cast<uint64_t>(VocabSize))) >>
      64);
}

/// Hashes \p Token into [0, VocabSize) (stable across platforms).
int hashToken(const std::string &Token, int VocabSize);

//===----------------------------------------------------------------------===//
// Structural path hashing
//
// A path's identity is (up-label sequence incl. the LCA, down-label
// sequence). Each side is hashed as a prefix chain over the labels'
// fnv1a hashes — precomputable once per terminal along its root path —
// and a pair's path hash combines the two sides asymmetrically in O(1).
// The string-based reference extractor in the tests uses these same
// combinators over label strings, pinning the mapping.
//===----------------------------------------------------------------------===//

/// Initial prefix-hash state (the empty label sequence).
inline uint64_t pathHashSeed() { return Fnv1aOffset; }

/// Absorbs one label (by its fnv1a hash) into a prefix-hash state.
inline uint64_t pathHashPush(uint64_t State, uint64_t LabelHash) {
  return splitmix64(State ^ LabelHash);
}

/// Combines the up-side prefix state (leaf-to-LCA labels, LCA included)
/// with the down-side prefix state (leaf-to-LCA labels, LCA excluded)
/// into the path's 64-bit hash. Asymmetric, so reversing a path hashes
/// differently.
inline uint64_t pathHashCombine(uint64_t UpHash, uint64_t DownHash) {
  return splitmix64(UpHash ^ (DownHash * 0x9E3779B97F4A7C15ull));
}

} // namespace nv

#endif // NV_EMBEDDING_PATHCONTEXT_H
