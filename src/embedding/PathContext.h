//===- embedding/PathContext.h - AST path-context extraction ----*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// code2vec-style decomposition of a loop's AST into path contexts: every
/// pair of terminal tokens together with the syntactic path between them
/// ("Code is first decomposed to a collection of paths in its abstract
/// syntax tree", §3.1). The embedding network learns a vector per token and
/// per path and aggregates them with attention (see Code2Vec.h).
///
//===----------------------------------------------------------------------===//

#ifndef NV_EMBEDDING_PATHCONTEXT_H
#define NV_EMBEDDING_PATHCONTEXT_H

#include "lang/AST.h"

#include <string>
#include <vector>

namespace nv {

/// One (source token, path, target token) triple, already hashed into
/// vocabulary ids.
struct PathContext {
  int SrcToken = 0;
  int Path = 0;
  int DstToken = 0;
};

/// Extraction and vocabulary parameters.
struct PathContextConfig {
  int TokenVocabSize = 2048;
  int PathVocabSize = 4096;
  int MaxPathLength = 9;   ///< Node count cap on a path (else skipped).
  int MaxContexts = 96;   ///< Per-snippet cap (deterministic subsample).
};

/// Extracts path contexts from the statement subtree \p S (typically the
/// outermost loop of a vectorization site, per §3.3).
std::vector<PathContext> extractPathContexts(const Stmt &S,
                                             const PathContextConfig &Config);

/// Hashes \p Token into [0, VocabSize) (stable across platforms).
int hashToken(const std::string &Token, int VocabSize);

} // namespace nv

#endif // NV_EMBEDDING_PATHCONTEXT_H
