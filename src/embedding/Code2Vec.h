//===- embedding/Code2Vec.h - Attention code embedding ----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code embedding generator (paper §3.1): a code2vec-style network
/// that maps a bag of AST path contexts to a single fixed-length code
/// vector. Architecture, following Alon et al.:
///
///   x_i   = [tokenEmb[src]; pathEmb[path]; tokenEmb[dst]]
///   c_i   = tanh(W x_i + b)            (combined context vector)
///   alpha = softmax(c_i . a)           (attention over contexts)
///   v     = sum_i alpha_i c_i          (code vector)
///
/// Unlike the original (pretrained on Java), this encoder is trained
/// *end-to-end with the RL agent*: PPO's gradient w.r.t. the state vector
/// flows through the attention into the embedding tables.
///
/// encodeBatchInto is the hot path: it runs the affine+tanh step through
/// the fused blocked kernels (nn/Kernels.h), reuses the per-sample caches
/// across calls (zero steady-state allocation), and can spread samples of
/// a batch across a ThreadPool — deterministically, since samples are
/// independent and every reduction order is fixed.
///
/// The paper uses a 340-dimensional code vector; the default here is 64
/// so the bench harnesses train in seconds (configurable; the hyper-
/// parameter sweep bench exercises other sizes).
///
//===----------------------------------------------------------------------===//

#ifndef NV_EMBEDDING_CODE2VEC_H
#define NV_EMBEDDING_CODE2VEC_H

#include "embedding/PathContext.h"
#include "nn/Layers.h"

#include <vector>

namespace nv {

class ThreadPool;

/// Code2Vec hyperparameters.
struct Code2VecConfig {
  PathContextConfig Paths;
  int TokenDim = 16; ///< Token embedding width.
  int PathDim = 16;  ///< Path embedding width.
  int CodeDim = 64;  ///< Output code vector width (paper: 340).
};

/// The attention encoder.
class Code2Vec {
public:
  Code2Vec(const Code2VecConfig &Config, RNG &Rng);

  const Code2VecConfig &config() const { return Config; }
  int codeDim() const { return Config.CodeDim; }

  /// Encodes a batch of context bags into \p V (resized to batch x
  /// CodeDim) and caches everything needed for backward(). Allocation-free
  /// once warm; samples fan out across \p Pool when provided (results are
  /// bit-identical with or without a pool, at any pool size).
  void encodeBatchInto(const std::vector<std::vector<PathContext>> &Batch,
                       Matrix &V, ThreadPool *Pool = nullptr);

  /// Serving-side encode: consumes borrowed id-triple spans directly (no
  /// per-bag copy into the sample caches) and produces bit-identical code
  /// vectors to encodeBatchInto on the same bags. Forward-only: it does
  /// not retain the contexts, so backward() is invalid until the next
  /// encodeBatchInto (asserted).
  void encodeSpansInto(const std::vector<ContextSpan> &Batch, Matrix &V,
                       ThreadPool *Pool = nullptr);

  /// Allocating convenience wrapper around encodeBatchInto.
  Matrix encodeBatch(const std::vector<std::vector<PathContext>> &Batch);

  /// Convenience single-snippet encode (1 x CodeDim).
  Matrix encode(const std::vector<PathContext> &Contexts);

  /// Accumulates parameter gradients for the last encodeBatch() given the
  /// loss gradient \p dV (batch x CodeDim).
  void backward(const Matrix &dV);

  std::vector<Param *> params();

  /// Builds (or refreshes) the int8 shadow of the combination matrix W.
  /// Only the serving encode (encodeSpansInto) uses it — encodeBatchInto
  /// retains state for backward() and therefore always runs fp32. Must be
  /// re-run after weight updates; see docs/quantization.md.
  void quantizeForInference() { quantizeLinearWeights(W.Value, QuantW); }
  void clearQuantized() { QuantW.clear(); }
  bool isQuantized() const { return QuantW.ready(); }

private:
  Code2VecConfig Config;

  Param TokenEmb; ///< (TokenVocab x TokenDim)
  Param PathEmb;  ///< (PathVocab x PathDim)
  Param W;        ///< (2*TokenDim + PathDim) x CodeDim
  Param B;        ///< (1 x CodeDim)
  Param Attn;     ///< (1 x CodeDim)

  /// Cached forward state per batch row. Reused across batches: growing a
  /// vector member reuses its allocation whenever the new size fits.
  struct SampleCache {
    std::vector<PathContext> Contexts;
    Matrix X;     ///< (n x inDim) concatenated embeddings.
    Matrix C;     ///< (n x CodeDim) tanh context vectors.
    std::vector<double> Alpha; ///< Attention weights (n).
    QuantScratch QScratch;     ///< Int8 activation scratch (serving).
  };
  std::vector<SampleCache> Cache;
  QuantizedLinear QuantW; ///< Int8 shadow of W (empty = fp32 only).
  bool BackwardReady = false; ///< Set by encodeBatchInto only.
  Matrix BackdC; ///< Backward scratch (n x CodeDim).
  Matrix BackdX; ///< Backward scratch (n x inDim).

  void encodeSample(SampleCache &SC, ContextSpan Contexts, double *VRow,
                    ThreadPool *Pool);
};

} // namespace nv

#endif // NV_EMBEDDING_CODE2VEC_H
