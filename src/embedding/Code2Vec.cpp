//===- embedding/Code2Vec.cpp - Attention code embedding ------------------===//

#include "embedding/Code2Vec.h"

#include "nn/Distributions.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cmath>

using namespace nv;

Code2Vec::Code2Vec(const Code2VecConfig &Config, RNG &Rng)
    : Config(Config),
      TokenEmb(Config.Paths.TokenVocabSize, Config.TokenDim),
      PathEmb(Config.Paths.PathVocabSize, Config.PathDim),
      W(2 * Config.TokenDim + Config.PathDim, Config.CodeDim),
      B(1, Config.CodeDim), Attn(1, Config.CodeDim) {
  TokenEmb.Value.initGaussian(Rng, 0.5);
  PathEmb.Value.initGaussian(Rng, 0.5);
  W.Value.initXavier(Rng);
  Attn.Value.initGaussian(Rng, 0.3);
}

std::vector<Param *> Code2Vec::params() {
  return {&TokenEmb, &PathEmb, &W, &B, &Attn};
}

void Code2Vec::encodeSample(SampleCache &SC, ContextSpan Contexts,
                            double *VRow, ThreadPool *Pool) {
  const int InDim = 2 * Config.TokenDim + Config.PathDim;
  for (int D = 0; D < Config.CodeDim; ++D)
    VRow[D] = 0.0;
  if (Contexts.empty()) {
    // Empty snippet: code vector is zero.
    SC.X.resize(0, InDim);
    SC.C.resize(0, Config.CodeDim);
    SC.Alpha.clear();
    return;
  }
  const int N = static_cast<int>(Contexts.Size);

  // Gather embeddings.
  SC.X.resize(N, InDim);
  for (int I = 0; I < N; ++I) {
    const PathContext &Ctx = Contexts.Data[I];
    double *Row = SC.X.rowPtr(I);
    const double *Src = TokenEmb.Value.rowPtr(Ctx.SrcToken);
    const double *Path = PathEmb.Value.rowPtr(Ctx.Path);
    const double *Dst = TokenEmb.Value.rowPtr(Ctx.DstToken);
    for (int D = 0; D < Config.TokenDim; ++D)
      Row[D] = Src[D];
    for (int D = 0; D < Config.PathDim; ++D)
      Row[Config.TokenDim + D] = Path[D];
    for (int D = 0; D < Config.TokenDim; ++D)
      Row[Config.TokenDim + Config.PathDim + D] = Dst[D];
  }

  // Combined context vectors: fused affine + tanh. The int8 shadow only
  // serves the forward-only span encode — encodeBatchInto marks a backward
  // pass possible (BackwardReady) before encoding, and gradients must see
  // the fp32 weights.
  if (QuantW.ready() && !BackwardReady)
    gemmQuantInto(SC.C, SC.X, QuantW, &B.Value, Activation::Tanh,
                  SC.QScratch, Pool);
  else
    gemmInto(SC.C, SC.X, W.Value, &B.Value, Activation::Tanh, Pool);

  // Attention scores, softmaxed in place.
  SC.Alpha.resize(N);
  const double *AttnRow = Attn.Value.rowPtr(0);
  double MaxScore = -1e300;
  for (int I = 0; I < N; ++I) {
    double Dot = 0.0;
    const double *CRow = SC.C.rowPtr(I);
    for (int D = 0; D < Config.CodeDim; ++D)
      Dot += CRow[D] * AttnRow[D];
    SC.Alpha[I] = Dot;
    MaxScore = std::max(MaxScore, Dot);
  }
  double Norm = 0.0;
  for (int I = 0; I < N; ++I) {
    SC.Alpha[I] = std::exp(SC.Alpha[I] - MaxScore);
    Norm += SC.Alpha[I];
  }
  for (int I = 0; I < N; ++I)
    SC.Alpha[I] /= Norm;

  // Weighted sum.
  for (int I = 0; I < N; ++I) {
    const double *CRow = SC.C.rowPtr(I);
    const double Alpha = SC.Alpha[I];
    for (int D = 0; D < Config.CodeDim; ++D)
      VRow[D] += Alpha * CRow[D];
  }
}

void Code2Vec::encodeBatchInto(
    const std::vector<std::vector<PathContext>> &Batch, Matrix &V,
    ThreadPool *Pool) {
  V.resize(static_cast<int>(Batch.size()), Config.CodeDim);
  Cache.resize(Batch.size()); // Existing SampleCaches keep their buffers.
  BackwardReady = true;

  auto EncodeOne = [&](size_t S, ThreadPool *SamplePool) {
    // Retain the contexts for backward()'s embedding-table scatter (the
    // copy reuses the cache vector's capacity once warm).
    Cache[S].Contexts = Batch[S];
    encodeSample(Cache[S], {Batch[S].data(), Batch[S].size()},
                 V.rowPtr(static_cast<int>(S)), SamplePool);
  };
  if (Pool && Batch.size() > 1) {
    // Samples are independent: fan them out and keep each sample's inner
    // GEMM serial. Per-sample results do not depend on the partition.
    Pool->parallelFor(0, Batch.size(),
                      [&](size_t S) { EncodeOne(S, nullptr); });
    return;
  }
  for (size_t S = 0; S < Batch.size(); ++S)
    EncodeOne(S, Pool);
}

void Code2Vec::encodeSpansInto(const std::vector<ContextSpan> &Batch,
                               Matrix &V, ThreadPool *Pool) {
  V.resize(static_cast<int>(Batch.size()), Config.CodeDim);
  Cache.resize(Batch.size());
  BackwardReady = false; // Contexts are borrowed, not retained.

  if (Pool && Batch.size() > 1) {
    Pool->parallelFor(0, Batch.size(), [&](size_t S) {
      encodeSample(Cache[S], Batch[S], V.rowPtr(static_cast<int>(S)),
                   nullptr);
    });
    return;
  }
  for (size_t S = 0; S < Batch.size(); ++S)
    encodeSample(Cache[S], Batch[S], V.rowPtr(static_cast<int>(S)), Pool);
}

Matrix Code2Vec::encodeBatch(
    const std::vector<std::vector<PathContext>> &Batch) {
  Matrix V;
  encodeBatchInto(Batch, V);
  return V;
}

Matrix Code2Vec::encode(const std::vector<PathContext> &Contexts) {
  return encodeBatch({Contexts});
}

void Code2Vec::backward(const Matrix &dV) {
  assert(BackwardReady &&
         "backward after encodeSpansInto (forward-only serving encode)");
  assert(dV.rows() == static_cast<int>(Cache.size()) &&
         "backward batch size mismatch with last encodeBatch");
  assert(dV.cols() == Config.CodeDim && "backward width mismatch");

  for (size_t S = 0; S < Cache.size(); ++S) {
    SampleCache &SC = Cache[S];
    const int N = static_cast<int>(SC.Contexts.size());
    if (N == 0)
      continue;
    const double *dVRow = dV.rowPtr(static_cast<int>(S));

    // v = sum alpha_i c_i.
    //   dAlpha_i = c_i . dv        dC_i += alpha_i dv
    std::vector<double> dAlpha(N, 0.0);
    Matrix &dC = BackdC;
    dC.resize(N, Config.CodeDim);
    for (int I = 0; I < N; ++I) {
      const double *CRow = SC.C.rowPtr(I);
      double *dCRow = dC.rowPtr(I);
      double Dot = 0.0;
      for (int D = 0; D < Config.CodeDim; ++D) {
        Dot += CRow[D] * dVRow[D];
        dCRow[D] = SC.Alpha[I] * dVRow[D];
      }
      dAlpha[I] = Dot;
    }

    // Softmax backward: dScore_i = alpha_i (dAlpha_i - sum_j alpha_j
    // dAlpha_j).
    double Weighted = 0.0;
    for (int I = 0; I < N; ++I)
      Weighted += SC.Alpha[I] * dAlpha[I];
    std::vector<double> dScore(N);
    for (int I = 0; I < N; ++I)
      dScore[I] = SC.Alpha[I] * (dAlpha[I] - Weighted);

    // Score_i = c_i . a:  dA += dScore_i c_i;  dC_i += dScore_i a.
    for (int I = 0; I < N; ++I) {
      const double *CRow = SC.C.rowPtr(I);
      double *dCRow = dC.rowPtr(I);
      for (int D = 0; D < Config.CodeDim; ++D) {
        Attn.Grad.at(0, D) += dScore[I] * CRow[D];
        dCRow[D] += dScore[I] * Attn.Value.at(0, D);
      }
    }

    // tanh backward into the affine pre-activation.
    for (int I = 0; I < N; ++I) {
      const double *CRow = SC.C.rowPtr(I);
      double *dCRow = dC.rowPtr(I);
      for (int D = 0; D < Config.CodeDim; ++D)
        dCRow[D] *= 1.0 - CRow[D] * CRow[D];
    }

    // Affine backward: pre = X W + b.
    gemmTAInto(W.Grad, SC.X, dC, /*Accumulate=*/true);
    sumRowsInto(B.Grad, dC, /*Accumulate=*/true);
    Matrix &dX = BackdX;
    gemmTBInto(dX, dC, W.Value);

    // Scatter into the embedding tables.
    for (int I = 0; I < N; ++I) {
      const PathContext &Ctx = SC.Contexts[I];
      const double *Row = dX.rowPtr(I);
      double *Src = TokenEmb.Grad.rowPtr(Ctx.SrcToken);
      double *Path = PathEmb.Grad.rowPtr(Ctx.Path);
      double *Dst = TokenEmb.Grad.rowPtr(Ctx.DstToken);
      for (int D = 0; D < Config.TokenDim; ++D)
        Src[D] += Row[D];
      for (int D = 0; D < Config.PathDim; ++D)
        Path[D] += Row[Config.TokenDim + D];
      for (int D = 0; D < Config.TokenDim; ++D)
        Dst[D] += Row[Config.TokenDim + Config.PathDim + D];
    }
  }
}
