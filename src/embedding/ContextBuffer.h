//===- embedding/ContextBuffer.h - Path-extraction arena --------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable per-thread arena behind extractPathContextsInto — the
/// same pattern nn/Workspace applies to the forward-pass matrices, applied
/// to the extraction front-end. One buffer holds:
///
///  - an Interner for node-kind labels and terminal tokens (symbols and
///    their FNV hashes persist across extractions, so a token seen once
///    is never hashed from bytes again);
///  - POD scratch for the flattened syntax tree, the terminals, the
///    flattened root paths with their prefix-hash states, and the output
///    contexts — all std::vectors whose capacity survives across calls,
///    so a warm extraction performs zero heap allocations.
///
/// A ContextBuffer is not thread-safe; the serving layer keeps one per
/// worker thread (thread_local), and the allocating extractPathContexts
/// wrapper does the same.
///
//===----------------------------------------------------------------------===//

#ifndef NV_EMBEDDING_CONTEXTBUFFER_H
#define NV_EMBEDDING_CONTEXTBUFFER_H

#include "embedding/PathContext.h"
#include "support/Interner.h"

#include <cstdint>
#include <vector>

namespace nv {

/// Scratch arena for allocation-free path-context extraction. The fields
/// below are owned by extractPathContextsInto (PathContext.cpp); callers
/// only construct the buffer, reuse it, and read Contexts through the
/// returned span.
class ContextBuffer {
public:
  ContextBuffer();

  /// Interned labels and terminal tokens (persists across extractions).
  Interner Symbols;

  /// One flattened syntax-tree node (POD; strings live in the interner).
  struct Node {
    int32_t Parent = -1;
    uint32_t Label = 0;     ///< Symbol id of the node-kind label.
    uint32_t Token = 0;     ///< Symbol id of the terminal token.
    uint8_t IsTerminal = 0;
  };

  // Per-extraction scratch (cleared per call; capacity reused).
  std::vector<Node> Nodes;
  std::vector<int32_t> Terminals;  ///< Node index per terminal.
  std::vector<int32_t> PathNodes;  ///< Flattened root paths.
  std::vector<uint64_t> PrefixHash; ///< Per-terminal prefix-hash states.
  std::vector<uint32_t> PathBegin;  ///< Offsets into PathNodes (size T+1).
  std::vector<uint32_t> PrefixBegin; ///< Offsets into PrefixHash (size T+1).
  std::vector<int> TokenIds;        ///< Per-terminal token vocab id.
  std::vector<PathContext> Contexts; ///< Extraction output.

  // Label symbol ids, interned once at construction so tree building
  // never hashes a label string.
  uint32_t LabelInt, LabelFlt, LabelVar, LabelArr, LabelIdx;
  uint32_t LabelNeg, LabelLNot, LabelBNot;
  uint32_t LabelCond, LabelCast, LabelCall;
  uint32_t LabelBlock, LabelDecl, LabelFor, LabelLo, LabelHi, LabelStep;
  uint32_t LabelIf, LabelElse, LabelRet, LabelTerminal;
  static constexpr int NumBinaryOps = 18;
  static constexpr int NumAssignOps = 4;
  uint32_t LabelBin[NumBinaryOps]; ///< "Bin" + binaryOpSpelling(op).
  uint32_t LabelAsg[NumAssignOps]; ///< "Asg", "Asg+", "Asg-", "Asg*".
};

} // namespace nv

#endif // NV_EMBEDDING_CONTEXTBUFFER_H
