//===- embedding/PathContext.cpp - AST path-context extraction ------------===//

#include "embedding/PathContext.h"

#include "embedding/ContextBuffer.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>

using namespace nv;

int nv::hashToken(const std::string &Token, int VocabSize) {
  assert(VocabSize > 0);
  return hashToVocab(fnv1a(Token), VocabSize);
}

ContextBuffer::ContextBuffer() {
  static_assert(static_cast<int>(BinaryOp::Ne) == NumBinaryOps - 1,
                "BinaryOp grew; extend the label cache");
  static_assert(static_cast<int>(AssignOp::MulAssign) == NumAssignOps - 1,
                "AssignOp grew; extend the label cache");
  LabelInt = Symbols.intern("Int");
  LabelFlt = Symbols.intern("Flt");
  LabelVar = Symbols.intern("Var");
  LabelArr = Symbols.intern("Arr");
  LabelIdx = Symbols.intern("Idx");
  LabelNeg = Symbols.intern("Neg");
  LabelLNot = Symbols.intern("LNot");
  LabelBNot = Symbols.intern("BNot");
  LabelCond = Symbols.intern("Cond");
  LabelCast = Symbols.intern("Cast");
  LabelCall = Symbols.intern("Call");
  LabelBlock = Symbols.intern("Block");
  LabelDecl = Symbols.intern("Decl");
  LabelFor = Symbols.intern("For");
  LabelLo = Symbols.intern("Lo");
  LabelHi = Symbols.intern("Hi");
  LabelStep = Symbols.intern("Step");
  LabelIf = Symbols.intern("If");
  LabelElse = Symbols.intern("Else");
  LabelRet = Symbols.intern("Ret");
  LabelTerminal = Symbols.intern("T");
  for (int Op = 0; Op < NumBinaryOps; ++Op)
    LabelBin[Op] = Symbols.intern(
        std::string("Bin") + binaryOpSpelling(static_cast<BinaryOp>(Op)));
  LabelAsg[0] = Symbols.intern("Asg");
  LabelAsg[1] = Symbols.intern("Asg+");
  LabelAsg[2] = Symbols.intern("Asg-");
  LabelAsg[3] = Symbols.intern("Asg*");
}

namespace {

/// Flattens the LoopLang AST into the buffer's POD nodes (labels and
/// terminal tokens as interned symbols).
class TreeBuilder {
public:
  explicit TreeBuilder(ContextBuffer &Buf) : Buf(Buf) {}

  int addNode(uint32_t Label, int Parent) {
    ContextBuffer::Node N;
    N.Label = Label;
    N.Parent = Parent;
    Buf.Nodes.push_back(N);
    return static_cast<int>(Buf.Nodes.size()) - 1;
  }

  int addTerminal(std::string_view Token, int Parent) {
    ContextBuffer::Node N;
    N.Token = Buf.Symbols.intern(Token);
    N.Label = Buf.LabelTerminal;
    N.Parent = Parent;
    N.IsTerminal = 1;
    Buf.Nodes.push_back(N);
    return static_cast<int>(Buf.Nodes.size()) - 1;
  }

  int addIntTerminal(long long Value, int Parent) {
    char Text[24];
    const int Len = std::snprintf(Text, sizeof(Text), "%lld", Value);
    return addTerminal(std::string_view(Text, static_cast<size_t>(Len)),
                       Parent);
  }

  void buildExpr(const Expr &E, int Parent);
  void buildStmt(const Stmt &S, int Parent);

private:
  ContextBuffer &Buf;
};

} // namespace

void TreeBuilder::buildExpr(const Expr &E, int Parent) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    addIntTerminal(static_cast<const IntLit &>(E).Value,
                   addNode(Buf.LabelInt, Parent));
    return;
  case ExprKind::FloatLit:
    addTerminal("<flt>", addNode(Buf.LabelFlt, Parent));
    return;
  case ExprKind::VarRef:
    addTerminal(static_cast<const VarRef &>(E).Name,
                addNode(Buf.LabelVar, Parent));
    return;
  case ExprKind::ArrayRef: {
    const auto &Ref = static_cast<const ArrayRef &>(E);
    const int Node = addNode(Buf.LabelArr, Parent);
    addTerminal(Ref.Name, Node);
    for (const auto &Index : Ref.Indices)
      buildExpr(*Index, addNode(Buf.LabelIdx, Node));
    return;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    const uint32_t Label = U.Op == UnaryOp::Neg   ? Buf.LabelNeg
                           : U.Op == UnaryOp::Not ? Buf.LabelLNot
                                                  : Buf.LabelBNot;
    buildExpr(*U.Sub, addNode(Label, Parent));
    return;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    const int Node = addNode(Buf.LabelBin[static_cast<int>(B.Op)], Parent);
    buildExpr(*B.LHS, Node);
    buildExpr(*B.RHS, Node);
    return;
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    const int Node = addNode(Buf.LabelCond, Parent);
    buildExpr(*T.Cond, Node);
    buildExpr(*T.Then, Node);
    buildExpr(*T.Else, Node);
    return;
  }
  case ExprKind::Cast: {
    const auto &C = static_cast<const CastExpr &>(E);
    const int Node = addNode(Buf.LabelCast, Parent);
    addTerminal(typeName(C.Ty), Node);
    buildExpr(*C.Sub, Node);
    return;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    const int Node = addNode(Buf.LabelCall, Parent);
    addTerminal(C.Callee, Node);
    for (const auto &Arg : C.Args)
      buildExpr(*Arg, Node);
    return;
  }
  }
}

void TreeBuilder::buildStmt(const Stmt &S, int Parent) {
  switch (S.kind()) {
  case StmtKind::Block: {
    const int Node = addNode(Buf.LabelBlock, Parent);
    for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
      buildStmt(*Child, Node);
    return;
  }
  case StmtKind::Decl: {
    const auto &D = static_cast<const DeclStmt &>(S);
    const int Node = addNode(Buf.LabelDecl, Parent);
    addTerminal(typeName(D.Ty), Node);
    addTerminal(D.Name, Node);
    if (D.Init)
      buildExpr(*D.Init, Node);
    return;
  }
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    const int Node = addNode(Buf.LabelAsg[static_cast<int>(A.Op)], Parent);
    buildExpr(*A.LValue, Node);
    buildExpr(*A.RHS, Node);
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    const int Node = addNode(Buf.LabelFor, Parent);
    addTerminal(F.IndexVar, Node);
    buildExpr(*F.Init, addNode(Buf.LabelLo, Node));
    buildExpr(*F.Bound, addNode(Buf.LabelHi, Node));
    addIntTerminal(F.Step, addNode(Buf.LabelStep, Node));
    buildStmt(*F.Body, Node);
    return;
  }
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    const int Node = addNode(Buf.LabelIf, Parent);
    buildExpr(*I.Cond, Node);
    buildStmt(*I.Then, Node);
    if (I.Else)
      buildStmt(*I.Else, addNode(Buf.LabelElse, Node));
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    const int Node = addNode(Buf.LabelRet, Parent);
    if (R.Value)
      buildExpr(*R.Value, Node);
    return;
  }
  }
}

ContextSpan nv::extractPathContextsInto(const Stmt &S,
                                        const PathContextConfig &Config,
                                        ContextBuffer &Buf) {
  Buf.Nodes.clear();
  Buf.Terminals.clear();
  Buf.PathNodes.clear();
  Buf.PrefixHash.clear();
  Buf.PathBegin.clear();
  Buf.PrefixBegin.clear();
  Buf.TokenIds.clear();
  Buf.Contexts.clear();

  TreeBuilder Builder(Buf);
  Builder.buildStmt(S, /*Parent=*/-1);

  // Gather terminals, their root paths (leaf's parent first, root last),
  // the prefix-hash states along each path, and each token's vocab id.
  for (size_t I = 0; I < Buf.Nodes.size(); ++I)
    if (Buf.Nodes[I].IsTerminal)
      Buf.Terminals.push_back(static_cast<int32_t>(I));

  const size_t NumTerminals = Buf.Terminals.size();
  Buf.PathBegin.reserve(NumTerminals + 1);
  Buf.PrefixBegin.reserve(NumTerminals + 1);
  Buf.TokenIds.reserve(NumTerminals);
  for (int32_t T : Buf.Terminals) {
    Buf.PathBegin.push_back(static_cast<uint32_t>(Buf.PathNodes.size()));
    Buf.PrefixBegin.push_back(static_cast<uint32_t>(Buf.PrefixHash.size()));
    uint64_t State = pathHashSeed();
    Buf.PrefixHash.push_back(State); // Zero labels absorbed.
    for (int32_t Cur = Buf.Nodes[T].Parent; Cur != -1;
         Cur = Buf.Nodes[Cur].Parent) {
      Buf.PathNodes.push_back(Cur);
      State = pathHashPush(State, Buf.Symbols.hash(Buf.Nodes[Cur].Label));
      Buf.PrefixHash.push_back(State);
    }
    Buf.TokenIds.push_back(hashToVocab(Buf.Symbols.hash(Buf.Nodes[T].Token),
                                       Config.TokenVocabSize));
  }
  Buf.PathBegin.push_back(static_cast<uint32_t>(Buf.PathNodes.size()));
  Buf.PrefixBegin.push_back(static_cast<uint32_t>(Buf.PrefixHash.size()));

  for (size_t I = 0; I < NumTerminals; ++I) {
    const int32_t *PI = Buf.PathNodes.data() + Buf.PathBegin[I];
    const uint64_t *HI = Buf.PrefixHash.data() + Buf.PrefixBegin[I];
    const size_t LenI = Buf.PathBegin[I + 1] - Buf.PathBegin[I];
    for (size_t J = I + 1; J < NumTerminals; ++J) {
      const int32_t *PJ = Buf.PathNodes.data() + Buf.PathBegin[J];
      const uint64_t *HJ = Buf.PrefixHash.data() + Buf.PrefixBegin[J];
      const size_t LenJ = Buf.PathBegin[J + 1] - Buf.PathBegin[J];
      // Lowest common ancestor via suffix matching of root paths.
      size_t SI = LenI, SJ = LenJ;
      while (SI > 0 && SJ > 0 && PI[SI - 1] == PJ[SJ - 1]) {
        --SI;
        --SJ;
      }
      // The LCA is the last matched node: PI[SI] (the root at minimum —
      // both terminals sit under one statement subtree).
      const size_t UpLen = SI, DownLen = SJ;
      if (static_cast<int>(UpLen + DownLen + 1) > Config.MaxPathLength)
        continue;

      // Up side: labels PI[0..UpLen] (LCA included) = prefix state after
      // UpLen + 1 pushes. Down side: labels PJ[0..DownLen-1] = prefix
      // state after DownLen pushes. Both are O(1) lookups.
      const uint64_t Path64 = pathHashCombine(HI[UpLen + 1], HJ[DownLen]);

      PathContext Ctx;
      Ctx.SrcToken = Buf.TokenIds[I];
      Ctx.Path = hashToVocab(Path64, Config.PathVocabSize);
      Ctx.DstToken = Buf.TokenIds[J];
      Buf.Contexts.push_back(Ctx);
    }
  }

  // Deterministic subsample when over budget: evenly strided selection
  // keeps coverage of the whole snippet. In place — source indices are
  // always >= destination indices.
  if (static_cast<int>(Buf.Contexts.size()) > Config.MaxContexts) {
    const double Stride =
        static_cast<double>(Buf.Contexts.size()) / Config.MaxContexts;
    for (int K = 0; K < Config.MaxContexts; ++K)
      Buf.Contexts[static_cast<size_t>(K)] =
          Buf.Contexts[static_cast<size_t>(K * Stride)];
    Buf.Contexts.resize(static_cast<size_t>(Config.MaxContexts));
  }
  return {Buf.Contexts.data(), Buf.Contexts.size()};
}

std::vector<PathContext>
nv::extractPathContexts(const Stmt &S, const PathContextConfig &Config) {
  static thread_local ContextBuffer Buf;
  const ContextSpan Span = extractPathContextsInto(S, Config, Buf);
  return std::vector<PathContext>(Span.begin(), Span.end());
}
