//===- embedding/PathContext.cpp - AST path-context extraction ------------===//

#include "embedding/PathContext.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace nv;

int nv::hashToken(const std::string &Token, int VocabSize) {
  assert(VocabSize > 0);
  return static_cast<int>(fnv1a(Token) % static_cast<uint64_t>(VocabSize));
}

namespace {

/// A generic syntax-tree node for path extraction.
struct TreeNode {
  std::string Label;        ///< Node-kind label (inner nodes).
  std::string Token;        ///< Terminal token (leaves only).
  int Parent = -1;
  bool IsTerminal = false;
};

/// Flattens the LoopLang AST into TreeNodes.
class TreeBuilder {
public:
  std::vector<TreeNode> Nodes;

  int addNode(const std::string &Label, int Parent) {
    TreeNode N;
    N.Label = Label;
    N.Parent = Parent;
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  int addTerminal(const std::string &Token, int Parent) {
    TreeNode N;
    N.Token = Token;
    N.Label = "T";
    N.Parent = Parent;
    N.IsTerminal = true;
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  void buildExpr(const Expr &E, int Parent);
  void buildStmt(const Stmt &S, int Parent);
};

} // namespace

void TreeBuilder::buildExpr(const Expr &E, int Parent) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    addTerminal(std::to_string(static_cast<const IntLit &>(E).Value),
                addNode("Int", Parent));
    return;
  case ExprKind::FloatLit:
    addTerminal("<flt>", addNode("Flt", Parent));
    return;
  case ExprKind::VarRef:
    addTerminal(static_cast<const VarRef &>(E).Name,
                addNode("Var", Parent));
    return;
  case ExprKind::ArrayRef: {
    const auto &Ref = static_cast<const ArrayRef &>(E);
    const int Node = addNode("Arr", Parent);
    addTerminal(Ref.Name, Node);
    for (const auto &Index : Ref.Indices)
      buildExpr(*Index, addNode("Idx", Node));
    return;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    const char *Label = U.Op == UnaryOp::Neg   ? "Neg"
                        : U.Op == UnaryOp::Not ? "LNot"
                                               : "BNot";
    buildExpr(*U.Sub, addNode(Label, Parent));
    return;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    const int Node =
        addNode(std::string("Bin") + binaryOpSpelling(B.Op), Parent);
    buildExpr(*B.LHS, Node);
    buildExpr(*B.RHS, Node);
    return;
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    const int Node = addNode("Cond", Parent);
    buildExpr(*T.Cond, Node);
    buildExpr(*T.Then, Node);
    buildExpr(*T.Else, Node);
    return;
  }
  case ExprKind::Cast: {
    const auto &C = static_cast<const CastExpr &>(E);
    const int Node = addNode("Cast", Parent);
    addTerminal(typeName(C.Ty), Node);
    buildExpr(*C.Sub, Node);
    return;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    const int Node = addNode("Call", Parent);
    addTerminal(C.Callee, Node);
    for (const auto &Arg : C.Args)
      buildExpr(*Arg, Node);
    return;
  }
  }
}

void TreeBuilder::buildStmt(const Stmt &S, int Parent) {
  switch (S.kind()) {
  case StmtKind::Block: {
    const int Node = addNode("Block", Parent);
    for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
      buildStmt(*Child, Node);
    return;
  }
  case StmtKind::Decl: {
    const auto &D = static_cast<const DeclStmt &>(S);
    const int Node = addNode("Decl", Parent);
    addTerminal(typeName(D.Ty), Node);
    addTerminal(D.Name, Node);
    if (D.Init)
      buildExpr(*D.Init, Node);
    return;
  }
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    const char *Label = A.Op == AssignOp::Assign      ? "Asg"
                        : A.Op == AssignOp::AddAssign ? "Asg+"
                        : A.Op == AssignOp::SubAssign ? "Asg-"
                                                      : "Asg*";
    const int Node = addNode(Label, Parent);
    buildExpr(*A.LValue, Node);
    buildExpr(*A.RHS, Node);
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    const int Node = addNode("For", Parent);
    addTerminal(F.IndexVar, Node);
    buildExpr(*F.Init, addNode("Lo", Node));
    buildExpr(*F.Bound, addNode("Hi", Node));
    addTerminal(std::to_string(F.Step), addNode("Step", Node));
    buildStmt(*F.Body, Node);
    return;
  }
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    const int Node = addNode("If", Parent);
    buildExpr(*I.Cond, Node);
    buildStmt(*I.Then, Node);
    if (I.Else)
      buildStmt(*I.Else, addNode("Else", Node));
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    const int Node = addNode("Ret", Parent);
    if (R.Value)
      buildExpr(*R.Value, Node);
    return;
  }
  }
}

std::vector<PathContext>
nv::extractPathContexts(const Stmt &S, const PathContextConfig &Config) {
  TreeBuilder Builder;
  Builder.buildStmt(S, /*Parent=*/-1);

  // Gather terminals and their root paths.
  std::vector<int> Terminals;
  for (size_t I = 0; I < Builder.Nodes.size(); ++I)
    if (Builder.Nodes[I].IsTerminal)
      Terminals.push_back(static_cast<int>(I));

  auto RootPath = [&](int Node) {
    std::vector<int> Path;
    for (int Cur = Builder.Nodes[Node].Parent; Cur != -1;
         Cur = Builder.Nodes[Cur].Parent)
      Path.push_back(Cur);
    return Path; // Leaf's parent first, root last.
  };

  std::vector<std::vector<int>> Paths;
  Paths.reserve(Terminals.size());
  for (int T : Terminals)
    Paths.push_back(RootPath(T));

  std::vector<PathContext> Contexts;
  const size_t NumTerminals = Terminals.size();
  for (size_t I = 0; I < NumTerminals; ++I) {
    for (size_t J = I + 1; J < NumTerminals; ++J) {
      // Lowest common ancestor via suffix matching of root paths.
      const std::vector<int> &PI = Paths[I];
      const std::vector<int> &PJ = Paths[J];
      size_t SI = PI.size(), SJ = PJ.size();
      while (SI > 0 && SJ > 0 && PI[SI - 1] == PJ[SJ - 1]) {
        --SI;
        --SJ;
      }
      // The LCA is the last matched node.
      const size_t UpLen = SI, DownLen = SJ;
      if (static_cast<int>(UpLen + DownLen + 1) > Config.MaxPathLength)
        continue;

      std::string PathStr;
      for (size_t K = 0; K < UpLen; ++K) {
        PathStr += Builder.Nodes[PI[K]].Label;
        PathStr += '^';
      }
      PathStr += Builder.Nodes[PI[UpLen]].Label; // LCA (exists: root).
      for (size_t K = DownLen; K-- > 0;) {
        PathStr += 'v';
        PathStr += Builder.Nodes[PJ[K]].Label;
      }

      PathContext Ctx;
      Ctx.SrcToken =
          hashToken(Builder.Nodes[Terminals[I]].Token, Config.TokenVocabSize);
      Ctx.Path = hashToken(PathStr, Config.PathVocabSize);
      Ctx.DstToken =
          hashToken(Builder.Nodes[Terminals[J]].Token, Config.TokenVocabSize);
      Contexts.push_back(Ctx);
    }
  }

  // Deterministic subsample when over budget: evenly strided selection
  // keeps coverage of the whole snippet.
  if (static_cast<int>(Contexts.size()) > Config.MaxContexts) {
    std::vector<PathContext> Sampled;
    Sampled.reserve(Config.MaxContexts);
    const double Stride =
        static_cast<double>(Contexts.size()) / Config.MaxContexts;
    for (int K = 0; K < Config.MaxContexts; ++K)
      Sampled.push_back(Contexts[static_cast<size_t>(K * Stride)]);
    Contexts = std::move(Sampled);
  }
  return Contexts;
}
