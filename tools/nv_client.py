#!/usr/bin/env python3
"""Reference client for the nv_serverd annotation daemon.

Speaks the length-prefixed binary protocol in src/net/Protocol.h
(little-endian, matching the daemon's host order on every platform this
repo targets):

    request:  u32 magic 'NVRP' | u8 verb | u32 bodyLen | body
    response: u32 magic 'NVRP' | u8 verb | u8 status | u32 bodyLen | body

Usage:
    nv_client.py [--host H] [--port P] [--retries N] [--timeout S] ping
    nv_client.py [...] annotate FILE [FILE...] [--method M] [--deadline-ms N]
    nv_client.py [...] statsz
    nv_client.py [...] reload MODEL_PATH

Transport errors on idempotent commands (ping, annotate, statsz) are
retried --retries times on a fresh connection with capped exponential
backoff; reload is only retried when the connection itself could not be
established (once a frame may have reached the daemon, a blind resend
could reload twice). A result answered by the fallback ladder prints
DEGRADED but still exits 0 — degraded-but-served is the contract.

Exit code 0 on an OK response, 1 on any rejection or transport error
(the status name is printed), so shell scripts and the CI smoke job can
assert on it directly.
"""

import argparse
import json
import random
import socket
import struct
import sys
import time

MAGIC = 0x4E565250  # 'NVRP'

VERB_PING = 0
VERB_ANNOTATE = 1
VERB_STATSZ = 2
VERB_RELOAD = 3

STATUS_NAMES = [
    "ok",
    "bad_request",
    "parse_error",
    "overloaded",
    "shutting_down",
    "reload_failed",
    "deadline_exceeded",
    "error",
]

METHODS = ["baseline", "rl", "nns", "tree", "random", "bruteforce"]


def recv_exact(sock, size):
    buf = b""
    while len(buf) < size:
        chunk = sock.recv(size - len(buf))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        buf += chunk
    return buf


def round_trip(sock, verb, body):
    sock.sendall(struct.pack("<IBI", MAGIC, verb, len(body)) + body)
    magic, rverb, status, body_len = struct.unpack(
        "<IBBI", recv_exact(sock, 10)
    )
    if magic != MAGIC or rverb != verb:
        raise ConnectionError("malformed response header")
    return status, recv_exact(sock, body_len)


def decode_string(body):
    if len(body) < 4:
        return ""
    (n,) = struct.unpack_from("<I", body, 0)
    return body[4 : 4 + n].decode("utf-8", "replace")


def status_name(status):
    return STATUS_NAMES[status] if status < len(STATUS_NAMES) else "?"


def cmd_ping(sock, _args):
    status, _ = round_trip(sock, VERB_PING, b"")
    print(status_name(status))
    return status == 0


def cmd_annotate(sock, args):
    method = None
    if args.method is not None:
        if args.method not in METHODS:
            sys.exit(f"unknown method '{args.method}' (one of {METHODS})")
        method = METHODS.index(args.method)
    body = struct.pack("<QI", args.deadline_ms * 1000, len(args.files))
    for path in args.files:
        with open(path, "rb") as f:
            source = f.read()
        name = path.encode()
        body += struct.pack("<BB", int(method is not None), method or 0)
        body += struct.pack("<I", len(name)) + name
        body += struct.pack("<I", len(source)) + source

    status, rbody = round_trip(sock, VERB_ANNOTATE, body)
    if status != 0:
        print(f"{status_name(status)}: {decode_string(rbody)}")
        return False

    off = 0
    generation, count = struct.unpack_from("<QI", rbody, off)
    off += 12
    print(f"generation {generation}, {count} result(s)")
    ok_all = True
    for _ in range(count):
        ok, method_idx = struct.unpack_from("<BB", rbody, off)
        off += 2
        degraded = ok == 2  # Fallback ladder answered; see Protocol.h.
        (name_len,) = struct.unpack_from("<I", rbody, off)
        off += 4
        name = rbody[off : off + name_len].decode("utf-8", "replace")
        off += name_len
        if not ok:
            (err_len,) = struct.unpack_from("<I", rbody, off)
            off += 4
            err = rbody[off : off + err_len].decode("utf-8", "replace")
            off += err_len
            print(f"  {name}: REJECTED ({err})")
            ok_all = False
            continue
        cached, plan_count = struct.unpack_from("<II", rbody, off)
        off += 8
        plans = []
        for _ in range(plan_count):
            vf, intf = struct.unpack_from("<II", rbody, off)
            off += 8
            plans.append(f"VF={vf},IF={intf}")
        (ann_len,) = struct.unpack_from("<I", rbody, off)
        off += 4
        annotated = rbody[off : off + ann_len].decode("utf-8", "replace")
        off += ann_len
        print(
            f"  {name} [{METHODS[method_idx]}] "
            f"{'; '.join(plans)} ({cached} cached)"
            f"{' DEGRADED' if degraded else ''}"
        )
        if args.print_source:
            print(annotated)
    return ok_all


def cmd_statsz(sock, _args):
    status, body = round_trip(sock, VERB_STATSZ, b"")
    if status != 0:
        print(f"{status_name(status)}: {decode_string(body)}")
        return False
    doc = json.loads(decode_string(body))
    print(json.dumps(doc, indent=2))
    return True


def cmd_reload(sock, args):
    path = args.model.encode()
    status, body = round_trip(
        sock, VERB_RELOAD, struct.pack("<I", len(path)) + path
    )
    if status != 0:
        print(f"{status_name(status)}: {decode_string(body)}")
        return False
    (generation,) = struct.unpack("<Q", body)
    print(f"reloaded: generation {generation}")
    return True


def backoff_seconds(attempt, base_ms=50, cap_ms=2000):
    """Capped exponential backoff with jitter in [0.5, 1.0) of the step
    (mirrors nv::NetClient::backoffMicros)."""
    step = min(cap_ms, base_ms << attempt)
    return step * (0.5 + 0.5 * random.random()) / 1000.0


def run_once(args, handler):
    """One connection, one command. Raises on transport failure; the
    `connected` flag on the exception tells the retry loop whether any
    bytes could have reached the daemon."""
    try:
        sock = socket.create_connection(
            (args.host, args.port), timeout=args.timeout
        )
    except OSError as e:
        e.connected = False
        raise
    try:
        with sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return handler(sock, args)
    except (OSError, ConnectionError) as e:
        e.connected = True
        raise


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7117)
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="transport-error retries for idempotent commands (default 3)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-connection socket timeout in seconds (default 60)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping")
    annotate = sub.add_parser("annotate")
    annotate.add_argument("files", nargs="+")
    annotate.add_argument("--method", default=None, help="backend override")
    annotate.add_argument(
        "--deadline-ms",
        type=int,
        default=0,
        help="queue deadline in ms (0 = none)",
    )
    annotate.add_argument(
        "--print-source",
        action="store_true",
        help="print the annotated source",
    )
    sub.add_parser("statsz")
    reload_cmd = sub.add_parser("reload")
    reload_cmd.add_argument("model")

    args = parser.parse_args()
    handlers = {
        "ping": cmd_ping,
        "annotate": cmd_annotate,
        "statsz": cmd_statsz,
        "reload": cmd_reload,
    }
    idempotent = args.command in ("ping", "annotate", "statsz")
    last_error = None
    for attempt in range(1 + max(0, args.retries)):
        if attempt:
            time.sleep(backoff_seconds(attempt - 1))
        try:
            ok = run_once(args, handlers[args.command])
        except (OSError, ConnectionError) as e:
            last_error = e
            # Reload is not idempotent once a frame may have gone out; a
            # pure connect failure is always safe to retry.
            if idempotent or not getattr(e, "connected", True):
                continue
            break
        sys.exit(0 if ok else 1)
    sys.exit(f"transport error: {last_error}")


if __name__ == "__main__":
    main()
