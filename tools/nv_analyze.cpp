//===- tools/nv_analyze.cpp - Offline loop legality inspector -------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Prints the legality analysis for every vectorizable loop of the given
// sources: access classification (uniform / consecutive / strided /
// gather), dependence edges with direction vectors and distances, the max
// safe VF, and the legal-(VF, IF) plan mask. The same analysis the policy
// masks against and the simulated compiler clamps with — run offline,
// without a model, for debugging and dataset triage.
//
// Usage:
//   nv_analyze [--json] [--max-vf N] file.c [file2.c ...]
//   nv_analyze [--json] -            # read one program from stdin
//
// With --json, emits one strict JSON object per program, one per line
// (JSONL). Exits nonzero if any program fails to parse or has no loops.
//
//===----------------------------------------------------------------------===//

#include "ir/AnalysisReport.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace nv;

namespace {

int usage() {
  std::cerr << "usage: nv_analyze [--json] [--max-vf N] <file.c ...|->\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  TargetInfo TI;
  std::vector<std::string> Inputs;
  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--max-vf") {
      if (I + 1 >= argc)
        return usage();
      TI.MaxVF = std::atoi(argv[++I]);
      if (TI.MaxVF < 1)
        return usage();
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      Inputs.push_back(Arg);
    }
  }
  if (Inputs.empty())
    return usage();

  int Failures = 0;
  for (const std::string &Path : Inputs) {
    std::string Source;
    std::string Name = Path;
    if (Path == "-") {
      std::ostringstream Buf;
      Buf << std::cin.rdbuf();
      Source = Buf.str();
      Name = "<stdin>";
    } else {
      std::ifstream In(Path);
      if (!In) {
        std::cerr << "nv_analyze: cannot open " << Path << "\n";
        ++Failures;
        continue;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
    }

    const AnalysisReport Report = analyzeProgram(Name, Source, TI);
    if (Json)
      std::cout << analysisJson(Report, TI) << "\n";
    else
      printAnalysisText(Report, TI, std::cout);
    if (!Report.Ok)
      ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}
