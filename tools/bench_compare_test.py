#!/usr/bin/env python3
"""Unit tests for the CI perf-regression gate (tools/bench_compare.py).

Run directly or via ctest (test name BenchCompareGate). Exercises the
gate against synthetic metric files: an in-tolerance drift passes, a
>25% throughput drop fails, non-throughput metrics are never gated, and
every override knob (--max-drop, NV_BENCH_SKIP, --update) behaves as
documented — so the PR demonstrating the gate never has to break CI.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def write_bench(directory, name, metrics):
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"bench": name, "metrics": metrics}, handle)
    return path


class BenchCompareGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.tmp.name, "baselines")
        self.current = os.path.join(self.tmp.name, "current")
        os.makedirs(self.baseline)
        os.makedirs(self.current)
        os.environ.pop("NV_BENCH_SKIP", None)
        os.environ.pop("NV_BENCH_MAX_DROP", None)

    def tearDown(self):
        self.tmp.cleanup()

    def run_gate(self, *extra):
        return bench_compare.main(["--baseline", self.baseline,
                                   "--current", self.current, *extra])

    def test_within_tolerance_passes(self):
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 900.0})
        self.assertEqual(self.run_gate(), 0)  # -10% < 25%.

    def test_improvement_passes(self):
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 4000.0})
        self.assertEqual(self.run_gate(), 0)

    def test_synthetic_regression_fails(self):
        # The acceptance scenario: a >25% ops/sec drop must fail the job.
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 700.0})
        self.assertEqual(self.run_gate(), 1)  # -30% > 25%.

    def test_exact_threshold_passes(self):
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 750.0})
        self.assertEqual(self.run_gate(), 0)  # Exactly -25% is tolerated.

    def test_non_throughput_metrics_are_not_gated(self):
        # Quality metrics (speedups etc.) may move without failing CI.
        write_bench(self.baseline, "fig7", {"rl_mean_speedup": 2.67,
                                            "train_steps": 80000})
        write_bench(self.current, "fig7", {"rl_mean_speedup": 0.5,
                                           "train_steps": 80000})
        self.assertEqual(self.run_gate(), 0)

    def test_max_drop_knob_loosens_gate(self):
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 700.0})
        self.assertEqual(self.run_gate("--max-drop", "0.5"), 0)

    def test_env_knobs(self):
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 100.0})
        os.environ["NV_BENCH_SKIP"] = "1"
        try:
            self.assertEqual(self.run_gate(), 0)
        finally:
            del os.environ["NV_BENCH_SKIP"]
        self.assertEqual(self.run_gate(), 1)

    def test_missing_baseline_warns_not_fails(self):
        # A brand-new bench must not fail CI before its baseline lands...
        write_bench(self.current, "brandnew", {"ops_per_sec": 123.0})
        self.assertEqual(self.run_gate(), 0)
        # ...unless the invocation opts into strictness.
        self.assertEqual(self.run_gate("--require-baseline"), 1)

    def test_new_ok_allows_a_first_landing_bench_under_strictness(self):
        # A bench landing in the same PR as its gate run cannot have a
        # committed baseline yet; --new-ok exempts it by name.
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 990.0})
        write_bench(self.current, "serve_net", {"programs_per_sec": 5e4})
        self.assertEqual(self.run_gate("--require-baseline"), 1)
        self.assertEqual(
            self.run_gate("--require-baseline", "--new-ok", "serve_net"), 0)
        # The exemption is per-name: an unrelated missing baseline still
        # fails strict runs.
        write_bench(self.current, "other", {"ops_per_sec": 1.0})
        self.assertEqual(
            self.run_gate("--require-baseline", "--new-ok", "serve_net"), 1)
        self.assertEqual(
            self.run_gate("--require-baseline", "--new-ok", "serve_net",
                          "--new-ok", "other"), 0)
        # ...and never masks a stale baseline.
        write_bench(self.baseline, "gone", {"ops_per_sec": 50.0})
        self.assertEqual(
            self.run_gate("--require-baseline", "--new-ok", "serve_net",
                          "--new-ok", "other", "--new-ok", "gone"), 1)

    def test_stale_baseline_is_caught_under_strictness(self):
        # A bench that silently stops emitting must not un-gate itself: CI
        # runs with --require-baseline, so a baseline with no current
        # metrics fails until it is deliberately deleted.
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.baseline, "gone", {"ops_per_sec": 50.0})
        write_bench(self.current, "serve", {"programs_per_sec": 990.0})
        self.assertEqual(self.run_gate(), 0)  # Default: warn only.
        self.assertEqual(self.run_gate("--require-baseline"), 1)

    def test_update_refreshes_baselines(self):
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "serve", {"programs_per_sec": 700.0})
        self.assertEqual(self.run_gate(), 1)
        self.assertEqual(self.run_gate("--update"), 0)
        self.assertEqual(self.run_gate(), 0)  # New baseline = current.
        with open(os.path.join(self.baseline, "BENCH_serve.json"),
                  encoding="utf-8") as handle:
            self.assertEqual(
                json.load(handle)["metrics"]["programs_per_sec"], 700.0)

    def test_mixed_benches_one_regressing_fails(self):
        write_bench(self.baseline, "micro", {"parse_ops_per_sec": 500.0})
        write_bench(self.baseline, "serve", {"programs_per_sec": 1000.0})
        write_bench(self.current, "micro", {"parse_ops_per_sec": 490.0})
        write_bench(self.current, "serve", {"programs_per_sec": 10.0})
        self.assertEqual(self.run_gate(), 1)

    def test_empty_current_directory_is_an_error(self):
        # CI misconfiguration (benches never ran) must not pass silently.
        self.assertEqual(self.run_gate(), 2)


if __name__ == "__main__":
    unittest.main()
