#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown docs resolve.

Usage: check_markdown_links.py [--root DIR] [FILE...]

With no FILE arguments, checks README.md and every markdown file under
docs/. Only relative links are verified (external http(s)/mailto links
are skipped -- CI must not depend on the network); a relative link
resolves iff the target path exists relative to the markdown file's own
directory. Fragments (#section) are stripped from path checks; a pure
fragment link (#section) must match a heading anchor in the same file.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link, greppable as FILE:LINE: message).
"""

import argparse
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Angle-bracket
# targets <like this> and titles ("...") are handled; nested parens are
# not (none in this repo's docs).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*(<[^>]*>|[^)\s]+)[^)]*\)")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def heading_anchors(lines):
    """GitHub-style anchors for every markdown heading in the file."""
    anchors = set()
    in_fence = False
    for line in lines:
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = re.match(r"^#{1,6}\s+(.*)$", line)
        if not m:
            continue
        text = re.sub(r"[`*_]", "", m.group(1).strip())
        anchor = re.sub(r"[^\w\- ]", "", text.lower())
        anchors.add(re.sub(r" ", "-", anchor))
    return anchors


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    anchors = heading_anchors(lines)
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            target = m.group(1).strip()
            if target.startswith("<") and target.endswith(">"):
                target = target[1:-1]
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            if not target:
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:
                if fragment and fragment not in anchors:
                    errors.append(
                        (path, lineno, "no heading for anchor #%s" % fragment)
                    )
                continue
            base = root if path_part.startswith("/") else os.path.dirname(path)
            resolved = os.path.normpath(
                os.path.join(base, path_part.lstrip("/"))
            )
            if not os.path.exists(resolved):
                errors.append(
                    (path, lineno, "broken link target %s" % target)
                )
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root directory")
    parser.add_argument("files", nargs="*", help="markdown files to check")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    )
    files = [os.path.abspath(f) for f in args.files]
    if not files:
        files = [os.path.join(root, "README.md")]
        docs = os.path.join(root, "docs")
        if os.path.isdir(docs):
            files += sorted(
                os.path.join(docs, f)
                for f in os.listdir(docs)
                if f.endswith(".md")
            )

    errors = []
    checked = 0
    for f in files:
        if not os.path.exists(f):
            errors.append((f, 0, "file not found"))
            continue
        checked += 1
        errors.extend(check_file(f, root))

    for path, lineno, msg in errors:
        print("%s:%d: %s" % (os.path.relpath(path, root), lineno, msg))
    if errors:
        print("%d broken link(s) across %d file(s)" % (len(errors), checked))
        return 1
    print("%d markdown file(s), all links resolve" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
