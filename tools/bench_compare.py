#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json metric files.

The benches (bench/*.cpp) emit flat JSON metric files of the form

    {"bench": "serve_throughput", "meta": {...}, "metrics":
     {"warm_cache_programs_per_sec": ...}}

into the working directory. Only the "metrics" block is compared; the
"meta" block (git sha, compiler, build type, thread count — see
bench/BenchUtil.h) is provenance for humans reading the artifacts and is
ignored here, so baselines recorded on other machines/commits still gate. This tool diffs a fresh set against the
committed baselines in bench/baselines/ and FAILS (exit 1) when any
throughput metric (key ending in ``_per_sec``) drops by more than
``--max-drop`` (default 25%). All other metrics are reported but never
gated: quality numbers (speedups, figure reproductions) regress for
model reasons, not perf reasons, and have their own tests.

Override knobs (documented in README.md):
  --max-drop 0.4            loosen the gate for one invocation
  NV_BENCH_MAX_DROP=0.4     loosen the gate via the environment (CI)
  NV_BENCH_SKIP=1           skip the gate entirely (emergency hatch)
  --update                  copy the current metrics over the baselines
                            (run after an intentional perf change, commit
                            the result)

Exit codes: 0 ok / skipped, 1 regression found, 2 usage or I/O error.
"""

import argparse
import json
import os
import shutil
import sys

GATED_SUFFIX = "_per_sec"


def load_metrics(path):
    """Returns (bench_name, {metric: value}) from one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "bench" not in data or "metrics" not in data:
        raise ValueError(f"{path}: not a bench metrics file")
    return data["bench"], data["metrics"]


def find_bench_files(directory):
    """BENCH_*.json files in `directory`, keyed by file name."""
    found = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            found[name] = os.path.join(directory, name)
    return found


def compare(baseline_dir, current_dir, max_drop):
    """Returns (rows, regressions, missing, stale) comparing the dirs.

    `missing` are current benches with no committed baseline; `stale` are
    committed baselines whose bench emitted nothing this run — a silently
    dropped bench would otherwise un-gate itself.
    """
    base_files = find_bench_files(baseline_dir) if os.path.isdir(
        baseline_dir) else {}
    cur_files = find_bench_files(current_dir)
    rows = []
    regressions = []
    missing = []
    stale = [name for name in base_files if name not in cur_files]

    for name, cur_path in cur_files.items():
        if name not in base_files:
            missing.append(name)
            continue
        bench, cur = load_metrics(cur_path)
        _, base = load_metrics(base_files[name])
        for key, cur_value in cur.items():
            if key not in base:
                continue
            # Non-numeric values (a stray annotation in either file)
            # cannot be diffed; skip them rather than crash the gate.
            if not isinstance(cur_value, (int, float)) or isinstance(
                    cur_value, bool):
                continue
            base_value = base[key]
            if not isinstance(base_value, (int, float)) or isinstance(
                    base_value, bool):
                continue
            gated = key.endswith(GATED_SUFFIX)
            if base_value <= 0:
                gated = False
            drop = 0.0
            if gated:
                drop = (base_value - cur_value) / base_value
            regressed = gated and drop > max_drop
            rows.append((bench, key, base_value, cur_value, gated, drop,
                         regressed))
            if regressed:
                regressions.append((bench, key, base_value, cur_value, drop))
    return rows, regressions, missing, stale


def print_report(rows, regressions, missing, stale, max_drop):
    if rows:
        width = max(len(f"{bench}.{key}") for bench, key, *_ in rows)
        print(f"{'metric'.ljust(width)}  {'baseline':>14} {'current':>14} "
              f"{'delta':>8}  gate")
        for bench, key, base, cur, gated, drop, regressed in rows:
            label = f"{bench}.{key}".ljust(width)
            delta = f"{-drop * 100.0:+.1f}%" if gated else "-"
            verdict = "FAIL" if regressed else ("ok" if gated else "info")
            print(f"{label}  {base:>14.4g} {cur:>14.4g} {delta:>8}  {verdict}")
    for name in missing:
        print(f"warning: no committed baseline for {name} "
              f"(add one with --update)")
    for name in stale:
        print(f"warning: baseline {name} has no current metrics — did its "
              f"bench stop running? (delete the baseline if intentional)")
    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) dropped more than "
              f"{max_drop * 100.0:.0f}%:")
        for bench, key, base, cur, drop in regressions:
            print(f"  {bench}.{key}: {base:.4g} -> {cur:.4g} "
                  f"({-drop * 100.0:+.1f}%)")
        print("If the regression is intentional, refresh the baselines "
              "(tools/bench_compare.py --update) or raise the threshold "
              "(--max-drop / NV_BENCH_MAX_DROP).")
    else:
        print(f"\nok: no gated metric dropped more than "
              f"{max_drop * 100.0:.0f}%")


def update_baselines(baseline_dir, current_dir):
    os.makedirs(baseline_dir, exist_ok=True)
    updated = []
    for name, path in find_bench_files(current_dir).items():
        shutil.copyfile(path, os.path.join(baseline_dir, name))
        updated.append(name)
    return updated


def main(argv=None):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline",
                        default=os.path.join(repo_root, "bench", "baselines"),
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--current", default=".",
                        help="directory holding the freshly emitted metrics")
    parser.add_argument("--max-drop", type=float,
                        default=float(os.environ.get("NV_BENCH_MAX_DROP",
                                                     "0.25")),
                        help="tolerated fractional drop per gated metric "
                             "(default 0.25, env NV_BENCH_MAX_DROP)")
    parser.add_argument("--update", action="store_true",
                        help="copy current metrics over the baselines and "
                             "exit")
    parser.add_argument("--require-baseline", action="store_true",
                        help="fail (not warn) when a current bench has no "
                             "committed baseline or a committed baseline "
                             "has no current metrics")
    parser.add_argument("--new-ok", action="append", default=[],
                        metavar="NAME",
                        help="bench whose baseline may be absent this run "
                             "(e.g. 'serve_net' for BENCH_serve_net.json): "
                             "a first-landing bench warns instead of "
                             "failing under --require-baseline; repeatable")
    args = parser.parse_args(argv)

    if os.environ.get("NV_BENCH_SKIP") == "1":
        print("NV_BENCH_SKIP=1: perf-regression gate skipped")
        return 0

    if not os.path.isdir(args.current):
        print(f"error: current directory '{args.current}' does not exist",
              file=sys.stderr)
        return 2

    if args.update:
        updated = update_baselines(args.baseline, args.current)
        if not updated:
            print(f"error: no BENCH_*.json files in '{args.current}'",
                  file=sys.stderr)
            return 2
        for name in updated:
            print(f"baseline updated: {name}")
        return 0

    try:
        rows, regressions, missing, stale = compare(
            args.baseline, args.current, args.max_drop)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if not rows and not missing:
        print(f"error: no BENCH_*.json files found in '{args.current}'",
              file=sys.stderr)
        return 2

    print_report(rows, regressions, missing, stale, args.max_drop)
    if regressions:
        return 1
    allowed_new = {f"BENCH_{name}.json" for name in args.new_ok}
    gating_missing = [name for name in missing if name not in allowed_new]
    for name in missing:
        if name in allowed_new:
            print(f"note: {name} is landing without a baseline "
                  f"(allowed by --new-ok)")
    if (gating_missing or stale) and args.require_baseline:
        print("FAIL: baseline/current sets disagree (--require-baseline)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
