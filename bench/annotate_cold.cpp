//===- bench/annotate_cold.cpp - Cold-path front-end + NNS throughput ------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// The serving layer's cache-miss ("cold") path is dominated by everything
// *before* the GEMMs: parse -> loop extraction -> path contexts -> cache
// key. This bench measures that front-end against an op-for-op replica of
// the pre-PR implementation (std::string tree builder with per-node label
// and token strings, per-site pretty-printed ContextText, per-pair token
// hashing, per-call allocations) — reproduced below the same way
// micro_components reproduces the pre-kernel forward path — plus the
// end-to-end cold service throughput and the indexed NNS backend against
// the per-query linear scalar scan it replaced.
//
// Correctness guards (the bench fails, not flakes, on mismatch):
//   - the legacy string path and the interned arena path must produce
//     byte-identical contexts for every site;
//   - cold service plans must be identical at 1 and 4 pool threads and
//     must match the reference plansFor() pipeline;
//   - indexed NNS batch plans must equal the linear-scan reference.
// Timing is reported, never gated, so contended CI runners cannot flake
// this bench; the perf gate compares the emitted JSON against committed
// baselines instead.
//
//   $ ./annotate_cold [--smoke]     # --smoke: shorter timing windows (CI)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "embedding/ContextBuffer.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>

using namespace nv;

namespace {

/// Runs Fn repeatedly for at least \p MinMs and returns executions/second.
double opsPerSec(const std::function<void()> &Fn, double MinMs) {
  using Clock = std::chrono::steady_clock;
  Fn(); // Warm-up.
  long long Iters = 0;
  const auto Start = Clock::now();
  double Ms = 0.0;
  do {
    Fn();
    ++Iters;
    Ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - Start)
             .count();
  } while (Ms < MinMs);
  return Iters * 1000.0 / Ms;
}

//===----------------------------------------------------------------------===//
// The pre-PR extraction front-end, op for op: a std::string syntax tree
// (one Label/Token string per node), per-pair token hashing, and the
// structural path hash evaluated from the label strings — so its output
// is comparable against the interned path while its cost profile matches
// the string path this PR removed.
//===----------------------------------------------------------------------===//

struct LegacyNode {
  std::string Label;
  std::string Token;
  int Parent = -1;
  bool IsTerminal = false;
};

struct LegacyBuilder {
  std::vector<LegacyNode> Nodes;

  int addNode(const std::string &Label, int Parent) {
    LegacyNode N;
    N.Label = Label;
    N.Parent = Parent;
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }
  int addTerminal(const std::string &Token, int Parent) {
    LegacyNode N;
    N.Token = Token;
    N.Label = "T";
    N.Parent = Parent;
    N.IsTerminal = true;
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  void buildExpr(const Expr &E, int Parent) {
    switch (E.kind()) {
    case ExprKind::IntLit:
      addTerminal(std::to_string(static_cast<const IntLit &>(E).Value),
                  addNode("Int", Parent));
      return;
    case ExprKind::FloatLit:
      addTerminal("<flt>", addNode("Flt", Parent));
      return;
    case ExprKind::VarRef:
      addTerminal(static_cast<const VarRef &>(E).Name,
                  addNode("Var", Parent));
      return;
    case ExprKind::ArrayRef: {
      const auto &Ref = static_cast<const ArrayRef &>(E);
      const int Node = addNode("Arr", Parent);
      addTerminal(Ref.Name, Node);
      for (const auto &Index : Ref.Indices)
        buildExpr(*Index, addNode("Idx", Node));
      return;
    }
    case ExprKind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      const char *Label = U.Op == UnaryOp::Neg   ? "Neg"
                          : U.Op == UnaryOp::Not ? "LNot"
                                                 : "BNot";
      buildExpr(*U.Sub, addNode(Label, Parent));
      return;
    }
    case ExprKind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      const int Node =
          addNode(std::string("Bin") + binaryOpSpelling(B.Op), Parent);
      buildExpr(*B.LHS, Node);
      buildExpr(*B.RHS, Node);
      return;
    }
    case ExprKind::Ternary: {
      const auto &T = static_cast<const TernaryExpr &>(E);
      const int Node = addNode("Cond", Parent);
      buildExpr(*T.Cond, Node);
      buildExpr(*T.Then, Node);
      buildExpr(*T.Else, Node);
      return;
    }
    case ExprKind::Cast: {
      const auto &C = static_cast<const CastExpr &>(E);
      const int Node = addNode("Cast", Parent);
      addTerminal(typeName(C.Ty), Node);
      buildExpr(*C.Sub, Node);
      return;
    }
    case ExprKind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      const int Node = addNode("Call", Parent);
      addTerminal(C.Callee, Node);
      for (const auto &Arg : C.Args)
        buildExpr(*Arg, Node);
      return;
    }
    }
  }

  void buildStmt(const Stmt &S, int Parent) {
    switch (S.kind()) {
    case StmtKind::Block: {
      const int Node = addNode("Block", Parent);
      for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
        buildStmt(*Child, Node);
      return;
    }
    case StmtKind::Decl: {
      const auto &D = static_cast<const DeclStmt &>(S);
      const int Node = addNode("Decl", Parent);
      addTerminal(typeName(D.Ty), Node);
      addTerminal(D.Name, Node);
      if (D.Init)
        buildExpr(*D.Init, Node);
      return;
    }
    case StmtKind::Assign: {
      const auto &A = static_cast<const AssignStmt &>(S);
      const char *Label = A.Op == AssignOp::Assign      ? "Asg"
                          : A.Op == AssignOp::AddAssign ? "Asg+"
                          : A.Op == AssignOp::SubAssign ? "Asg-"
                                                        : "Asg*";
      const int Node = addNode(Label, Parent);
      buildExpr(*A.LValue, Node);
      buildExpr(*A.RHS, Node);
      return;
    }
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      const int Node = addNode("For", Parent);
      addTerminal(F.IndexVar, Node);
      buildExpr(*F.Init, addNode("Lo", Node));
      buildExpr(*F.Bound, addNode("Hi", Node));
      addTerminal(std::to_string(F.Step), addNode("Step", Node));
      buildStmt(*F.Body, Node);
      return;
    }
    case StmtKind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      const int Node = addNode("If", Parent);
      buildExpr(*I.Cond, Node);
      buildStmt(*I.Then, Node);
      if (I.Else)
        buildStmt(*I.Else, addNode("Else", Node));
      return;
    }
    case StmtKind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      const int Node = addNode("Ret", Parent);
      if (R.Value)
        buildExpr(*R.Value, Node);
      return;
    }
    }
  }
};

std::vector<PathContext> legacyExtract(const Stmt &S,
                                       const PathContextConfig &Config) {
  LegacyBuilder Builder;
  Builder.buildStmt(S, /*Parent=*/-1);

  std::vector<int> Terminals;
  for (size_t I = 0; I < Builder.Nodes.size(); ++I)
    if (Builder.Nodes[I].IsTerminal)
      Terminals.push_back(static_cast<int>(I));

  std::vector<std::vector<int>> Paths;
  Paths.reserve(Terminals.size());
  for (int T : Terminals) {
    std::vector<int> Path;
    for (int Cur = Builder.Nodes[T].Parent; Cur != -1;
         Cur = Builder.Nodes[Cur].Parent)
      Path.push_back(Cur);
    Paths.push_back(std::move(Path));
  }

  std::vector<PathContext> Contexts;
  for (size_t I = 0; I < Terminals.size(); ++I) {
    for (size_t J = I + 1; J < Terminals.size(); ++J) {
      const std::vector<int> &PI = Paths[I];
      const std::vector<int> &PJ = Paths[J];
      size_t SI = PI.size(), SJ = PJ.size();
      while (SI > 0 && SJ > 0 && PI[SI - 1] == PJ[SJ - 1]) {
        --SI;
        --SJ;
      }
      const size_t UpLen = SI, DownLen = SJ;
      if (static_cast<int>(UpLen + DownLen + 1) > Config.MaxPathLength)
        continue;

      // Per-pair label hashing from the strings (the pre-PR cost shape:
      // the whole path's bytes go through the hash for every pair).
      uint64_t Up = pathHashSeed();
      for (size_t K = 0; K <= UpLen; ++K)
        Up = pathHashPush(Up, fnv1a(Builder.Nodes[PI[K]].Label));
      uint64_t Down = pathHashSeed();
      for (size_t K = 0; K < DownLen; ++K)
        Down = pathHashPush(Down, fnv1a(Builder.Nodes[PJ[K]].Label));

      PathContext Ctx;
      Ctx.SrcToken = hashToken(Builder.Nodes[Terminals[I]].Token,
                               Config.TokenVocabSize);
      Ctx.Path =
          hashToVocab(pathHashCombine(Up, Down), Config.PathVocabSize);
      Ctx.DstToken = hashToken(Builder.Nodes[Terminals[J]].Token,
                               Config.TokenVocabSize);
      Contexts.push_back(Ctx);
    }
  }

  if (static_cast<int>(Contexts.size()) > Config.MaxContexts) {
    std::vector<PathContext> Sampled;
    Sampled.reserve(Config.MaxContexts);
    const double Stride =
        static_cast<double>(Contexts.size()) / Config.MaxContexts;
    for (int K = 0; K < Config.MaxContexts; ++K)
      Sampled.push_back(Contexts[static_cast<size_t>(K * Stride)]);
    Contexts = std::move(Sampled);
  }
  return Contexts;
}

/// The pre-index NNS scan, op for op: per-query row copy, exact scalar
/// distances, allocated distance and vote vectors.
VectorPlan legacyNNSPredict(
    const std::vector<std::pair<std::vector<double>, VectorPlan>> &Examples,
    const std::vector<double> &Query, int K) {
  std::vector<std::pair<double, size_t>> Dist;
  Dist.reserve(Examples.size());
  for (size_t I = 0; I < Examples.size(); ++I) {
    double Sum = 0.0;
    const std::vector<double> &E = Examples[I].first;
    for (size_t D = 0; D < E.size(); ++D) {
      const double Diff = Query[D] - E[D];
      Sum += Diff * Diff;
    }
    Dist.emplace_back(Sum, I);
  }
  const size_t Keep = std::min<size_t>(static_cast<size_t>(K), Dist.size());
  std::partial_sort(Dist.begin(), Dist.begin() + Keep, Dist.end());
  std::vector<std::pair<VectorPlan, int>> Votes;
  for (size_t N = 0; N < Keep; ++N) {
    const VectorPlan &Label = Examples[Dist[N].second].second;
    bool Found = false;
    for (auto &[Plan, Count] : Votes) {
      if (Plan == Label) {
        ++Count;
        Found = true;
        break;
      }
    }
    if (!Found)
      Votes.emplace_back(Label, 1);
  }
  VectorPlan Best = Votes.front().first;
  int BestCount = Votes.front().second;
  for (const auto &[Plan, Count] : Votes) {
    if (Count > BestCount) {
      Best = Plan;
      BestCount = Count;
    }
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  const double MinMs = Smoke ? 40.0 : 200.0;

  std::cout << "=== annotate_cold: cache-miss front-end + indexed NNS ===\n"
            << (Smoke ? "(smoke mode: short timing windows)\n" : "") << "\n";

  BenchJson Json("annotate_cold");
  Table T({"path", "loops/s", "speedup"});

  // The workload: distinct generated loops (no duplicates — everything a
  // cache miss), pre-parsed once where only extraction is measured.
  constexpr int NumPrograms = 96;
  LoopGenerator Gen(/*Seed=*/4242);
  std::vector<GeneratedLoop> Programs = Gen.generateMany(NumPrograms);
  const PathContextConfig Paths; // Default serving configuration.

  // --- Guard: the interned arena path must equal the string path --------
  size_t TotalSites = 0;
  for (const GeneratedLoop &L : Programs) {
    std::optional<Program> P = parseSource(L.Source);
    if (!P) {
      std::cerr << "generator produced an unparsable program\n";
      return 1;
    }
    clearAllPragmas(*P);
    for (const LoopSite &Site : extractLoops(*P)) {
      ++TotalSites;
      const std::vector<PathContext> Legacy =
          legacyExtract(*Site.Outer, Paths);
      const std::vector<PathContext> Interned =
          extractPathContexts(*Site.Outer, Paths);
      if (Legacy.size() != Interned.size() ||
          !std::equal(Legacy.begin(), Legacy.end(), Interned.begin(),
                      [](const PathContext &A, const PathContext &B) {
                        return A.SrcToken == B.SrcToken && A.Path == B.Path &&
                               A.DstToken == B.DstToken;
                      })) {
        std::cerr << "MISMATCH: interned and string extraction disagree on "
                  << L.Name << "\n";
        return 1;
      }
    }
  }

  // --- Cold extraction front-end: pre-PR replica vs the arena'd path ----
  // The stage this optimization rebuilt: loop extraction, path contexts,
  // and cache keys over already-parsed programs (the parser is shared by
  // both paths and measured separately below).
  std::vector<std::unique_ptr<Program>> Parsed;
  for (const GeneratedLoop &L : Programs) {
    std::optional<Program> P = parseSource(L.Source);
    clearAllPragmas(*P);
    Parsed.push_back(std::make_unique<Program>(std::move(*P)));
  }

  const double LegacyOps = opsPerSec(
      [&] {
        for (const std::unique_ptr<Program> &P : Parsed) {
          // Pre-PR extractLoops always pretty-printed ContextText.
          std::vector<LoopSite> Sites = extractLoops(*P);
          for (const LoopSite &Site : Sites) {
            const std::vector<PathContext> Contexts =
                legacyExtract(*Site.Outer, Paths);
            const ContextKey Key = contextBagKey(Contexts, false);
            (void)Key;
          }
        }
      },
      MinMs);

  ContextBuffer Buf; // Persistent arena, as the serving workers keep.
  const double ColdOps = opsPerSec(
      [&] {
        for (const std::unique_ptr<Program> &P : Parsed) {
          std::vector<LoopSite> Sites =
              extractLoops(*P, /*WithContextText=*/false);
          for (const LoopSite &Site : Sites) {
            const ContextSpan Span =
                extractPathContextsInto(*Site.Outer, Paths, Buf);
            const ContextKey Key = contextBagKey(Span, false);
            (void)Key;
          }
        }
      },
      MinMs);

  const double LegacyLoops = LegacyOps * static_cast<double>(TotalSites);
  const double ColdLoops = ColdOps * static_cast<double>(TotalSites);
  T.addRow({"extract, pre-PR strings", Table::fmt(LegacyLoops, 0),
            Table::fmt(1.0) + "x"});
  T.addRow({"extract, interned arena", Table::fmt(ColdLoops, 0),
            Table::fmt(ColdLoops / LegacyLoops) + "x"});
  Json.add("annotate_cold_legacy_loops_per_sec", LegacyLoops);
  Json.add("annotate_cold_loops_per_sec", ColdLoops);
  Json.add("annotate_cold_speedup", ColdLoops / LegacyLoops);

  // --- The same front-ends with the (shared) parser included ------------
  const double LegacyParseOps = opsPerSec(
      [&] {
        for (const GeneratedLoop &L : Programs) {
          std::optional<Program> P = parseSource(L.Source);
          clearAllPragmas(*P);
          for (const LoopSite &Site : extractLoops(*P)) {
            const ContextKey Key =
                contextBagKey(legacyExtract(*Site.Outer, Paths), false);
            (void)Key;
          }
        }
      },
      MinMs);
  const double ColdParseOps = opsPerSec(
      [&] {
        for (const GeneratedLoop &L : Programs) {
          std::optional<Program> P = parseSource(L.Source);
          clearAllPragmas(*P);
          for (const LoopSite &Site :
               extractLoops(*P, /*WithContextText=*/false)) {
            const ContextKey Key = contextBagKey(
                extractPathContextsInto(*Site.Outer, Paths, Buf), false);
            (void)Key;
          }
        }
      },
      MinMs);
  const double LegacyParseLoops =
      LegacyParseOps * static_cast<double>(TotalSites);
  const double ColdParseLoops =
      ColdParseOps * static_cast<double>(TotalSites);
  T.addRow({"parse+extract, pre-PR", Table::fmt(LegacyParseLoops, 0),
            Table::fmt(1.0) + "x"});
  T.addRow({"parse+extract, this PR", Table::fmt(ColdParseLoops, 0),
            Table::fmt(ColdParseLoops / LegacyParseLoops) + "x"});
  Json.add("annotate_cold_with_parse_legacy_loops_per_sec",
           LegacyParseLoops);
  Json.add("annotate_cold_with_parse_loops_per_sec", ColdParseLoops);

  // --- End-to-end cold service (extraction + embed + policy + render) ---
  std::cout << "training a small model for the end-to-end run...\n";
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/60,
                                  /*TrainSteps=*/Smoke ? 256 : 1024);
  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Programs)
    Requests.push_back({L.Name, L.Source});

  // Guard: cold plans identical at 1 and 4 threads, and equal to the
  // one-program-at-a-time reference pipeline.
  {
    ServeConfig Serve1;
    Serve1.Threads = 1;
    std::vector<AnnotationResult> R1 =
        NV->service(Serve1).annotateBatch(Requests);
    ServeConfig Serve4;
    Serve4.Threads = 4;
    std::vector<AnnotationResult> R4 =
        NV->service(Serve4).annotateBatch(Requests);
    for (size_t I = 0; I < Requests.size(); ++I) {
      if (!R1[I].Ok || !R4[I].Ok || R1[I].Annotated != R4[I].Annotated) {
        std::cerr << "MISMATCH: cold plans differ across pool sizes at "
                  << Requests[I].Name << "\n";
        return 1;
      }
      const std::vector<VectorPlan> Ref = NV->plansFor(Requests[I].Source);
      if (Ref != R1[I].Plans) {
        std::cerr << "MISMATCH: service plans differ from plansFor() at "
                  << Requests[I].Name << "\n";
        return 1;
      }
    }
  }

  ServeConfig Serve;
  Serve.Threads = 4;
  AnnotationService &Service = NV->service(Serve);
  const double E2EOps = opsPerSec(
      [&] {
        Service.clearCache(); // Every iteration is all misses.
        if (Service.annotateBatch(Requests).front().Ok == false)
          std::abort();
      },
      MinMs);
  Json.add("annotate_cold_e2e_programs_per_sec",
           E2EOps * static_cast<double>(NumPrograms));
  std::cout << "cold service (4 thr):  "
            << static_cast<long long>(E2EOps * NumPrograms)
            << " programs/s end-to-end\n\n";

  // --- NNS: indexed batch vs the pre-PR linear scalar scan --------------
  constexpr int NNSExamples = 1024, NNSDim = 64, NNSQueries = 64, NNSK = 3;
  RNG Rng(777);
  NearestNeighborPredictor Index(NNSK);
  std::vector<std::pair<std::vector<double>, VectorPlan>> Flat;
  const VectorPlan PlanPool[] = {{1, 1}, {4, 2}, {8, 4}, {16, 4}, {64, 8}};
  for (int I = 0; I < NNSExamples; ++I) {
    std::vector<double> E(NNSDim);
    for (double &V : E)
      V = Rng.nextUniform(-1.0, 1.0);
    Index.add(E, PlanPool[I % 5]);
    Flat.emplace_back(std::move(E), PlanPool[I % 5]);
  }
  Matrix Queries(NNSQueries, NNSDim);
  for (int R = 0; R < NNSQueries; ++R)
    for (int D = 0; D < NNSDim; ++D)
      Queries.at(R, D) = Rng.nextUniform(-1.0, 1.0);

  // Guard: identical plans from both scans.
  std::vector<VectorPlan> Batch;
  Index.predictBatch(Queries, Batch);
  for (int R = 0; R < NNSQueries; ++R) {
    const std::vector<double> Query(Queries.rowPtr(R),
                                    Queries.rowPtr(R) + NNSDim);
    if (legacyNNSPredict(Flat, Query, NNSK) != Batch[R]) {
      std::cerr << "MISMATCH: indexed NNS disagrees with linear scan at "
                << "query " << R << "\n";
      return 1;
    }
  }

  const double LinearBatches = opsPerSec(
      [&] {
        for (int R = 0; R < NNSQueries; ++R) {
          const std::vector<double> Query(Queries.rowPtr(R),
                                          Queries.rowPtr(R) + NNSDim);
          volatile int Sink = legacyNNSPredict(Flat, Query, NNSK).VF;
          (void)Sink;
        }
      },
      MinMs);
  std::vector<VectorPlan> Out;
  const double IndexedBatches = opsPerSec(
      [&] { Index.predictBatch(Queries, Out); }, MinMs);

  const double LinearQPS = LinearBatches * NNSQueries;
  const double IndexedQPS = IndexedBatches * NNSQueries;
  Table N({"nns path (1024 examples)", "queries/s", "speedup"});
  N.addRow({"per-query linear scan", Table::fmt(LinearQPS, 0),
            Table::fmt(1.0) + "x"});
  N.addRow({"indexed (norms + GEMM)", Table::fmt(IndexedQPS, 0),
            Table::fmt(IndexedQPS / LinearQPS) + "x"});
  Json.add("nns_linear_queries_per_sec", LinearQPS);
  Json.add("nns_queries_per_sec", IndexedQPS);
  Json.add("nns_speedup", IndexedQPS / LinearQPS);

  T.print(std::cout);
  std::cout << "\n";
  N.print(std::cout);
  std::cout << "\n";
  Json.write("annotate_cold");
  // Exit status reflects correctness only (the guards above); timing is
  // reported, not gated.
  return 0;
}
