//===- bench/fig1_dotproduct.cpp - Paper Fig 1 reproduction ---------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 1: the dot-product kernel's speedup over the baseline
// cost model for every (VF, IF) combination. The paper reports, on its i7
// testbed:
//   - the baseline model picks (VF=4, IF=2),
//   - the baseline is ~2.6x faster than not vectorizing (VF=1, IF=1),
//   - 26 of 35 combinations beat the baseline,
//   - the best is (VF=64, IF=8) at up to ~1.2x over the baseline.
// The shape of the surface (who wins, where) is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "sim/Compiler.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

static const char *DotProductSource = R"(
int vec[512] __attribute__((aligned(16)));

__attribute__((noinline))
int example1() {
  int sum = 0;
  for (int i = 0; i < 512; i++) {
    sum += vec[i] * vec[i];
  }
  return sum;
}
)";

int main() {
  std::string Error;
  std::optional<Program> P = parseSource(DotProductSource, &Error);
  if (!P) {
    std::cerr << "parse error: " << Error << "\n";
    return 1;
  }

  SimCompiler Compiler;
  const TargetInfo &TI = Compiler.target();

  // Baseline decision and time.
  CompileResult Base = Compiler.compileBaseline(*P);
  const double BaseCycles = Base.ExecutionCycles;
  const VectorPlan BasePlan = Base.Loops.at(0).Effective;

  std::vector<LoopSite> Sites = extractLoops(*P);

  auto RunWith = [&](int VF, int IF) {
    injectPragma(Sites[0], {VF, IF});
    CompileResult R = Compiler.compileAndRun(*P);
    clearPragma(Sites[0]);
    return R;
  };

  const double ScalarCycles = RunWith(1, 1).ExecutionCycles;

  std::cout << "=== Fig 1: dot product, speedup over baseline cost model "
               "===\n";
  std::cout << "baseline picks (VF=" << BasePlan.VF << ", IF=" << BasePlan.IF
            << "); baseline over scalar: "
            << Table::fmt(ScalarCycles / BaseCycles) << "x\n\n";

  std::vector<std::string> Header = {"VF\\IF"};
  for (int IF : TI.ifActions())
    Header.push_back("IF=" + std::to_string(IF));
  Table Grid(Header);

  int Better = 0, Total = 0;
  double BestSpeedup = 0.0;
  int BestVF = 1, BestIF = 1;
  for (int VF : TI.vfActions()) {
    std::vector<std::string> Row = {"VF=" + std::to_string(VF)};
    for (int IF : TI.ifActions()) {
      const double Cycles = RunWith(VF, IF).ExecutionCycles;
      const double Speedup = BaseCycles / Cycles;
      Row.push_back(Table::fmt(Speedup));
      ++Total;
      if (Speedup >= 1.0)
        ++Better;
      if (Speedup > BestSpeedup) {
        BestSpeedup = Speedup;
        BestVF = VF;
        BestIF = IF;
      }
    }
    Grid.addRow(Row);
  }
  Grid.print(std::cout);
  std::cout << "\n" << Better << " of " << Total
            << " combinations >= baseline (paper: 26 of 35)\n";
  std::cout << "best: (VF=" << BestVF << ", IF=" << BestIF << ") at "
            << Table::fmt(BestSpeedup) << "x over baseline (paper: (64, 8) "
            << "at ~1.2x)\n";
  return 0;
}
