//===- bench/fig8_polybench.cpp - Paper Fig 8 reproduction ----------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 8: transfer to PolyBench (loop-dominated linear
// algebra), comparing baseline, Polly, deep RL, and the RL+Polly
// combination. Paper findings:
//   - RL 2.08x over baseline, 1.16x over Polly on average;
//   - Polly wins where trip counts are largest (its transforms need the
//     iterations), RL wins elsewhere — 3 benchmarks each;
//   - combining Polly + RL reaches 2.92x.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "dataset/Suites.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "polly/Polly.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  std::cout << "=== Fig 8: PolyBench transfer (speedup over baseline) "
               "===\n\n";
  std::cout << "training end-to-end RL on the synthetic dataset...\n";
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/200,
                                  /*TrainSteps=*/40000);

  Table T({"benchmark", "Polly", "RL", "RL+Polly"});
  std::vector<double> Polly, RL, Combo;
  int RLWins = 0, PollyWins = 0;
  for (const NamedProgram &B : polyBenchSuite()) {
    const double Base = NV->cyclesFor(B.Source, PredictMethod::Baseline);

    std::optional<Program> P = parseSource(B.Source);
    PollyReport Report;
    Program Transformed = applyPolly(*P, &Report);
    const std::string TransformedSrc = printProgram(Transformed);
    const double Po =
        Base / NV->cyclesFor(TransformedSrc, PredictMethod::Baseline);
    const double L = NV->speedupOverBaseline(B.Source, PredictMethod::RL);
    // RL + Polly: transform first, then let the agent pick factors.
    const double C =
        Base / NV->cyclesFor(TransformedSrc, PredictMethod::RL);

    Polly.push_back(Po);
    RL.push_back(L);
    Combo.push_back(C);
    (L >= Po ? RLWins : PollyWins)++;
    T.addRow({B.Name, Table::fmt(Po), Table::fmt(L), Table::fmt(C)});
  }
  T.print(std::cout);

  std::cout << "\naverages (paper in parentheses):\n";
  std::cout << "  Polly    " << Table::fmt(mean(Polly)) << "x  (~1.8x)\n";
  std::cout << "  RL       " << Table::fmt(mean(RL)) << "x  (2.08x)\n";
  std::cout << "  RL+Polly " << Table::fmt(mean(Combo)) << "x  (2.92x)\n";
  std::cout << "  RL / Polly = " << Table::fmt(mean(RL) / mean(Polly))
            << "x (paper: 1.16x)\n";
  std::cout << "  RL wins on " << RLWins << " of 6, Polly on " << PollyWins
            << " (paper: 3 each)\n";
  return 0;
}
