//===- bench/fig6_actionspace.cpp - Paper Fig 6 reproduction --------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 6: reward mean and training loss for the three action
// space definitions of §4 —
//   (1) discrete: the agent picks two integers indexing the VF/IF arrays,
//   (2) continuous, one number encoding both factors jointly,
//   (3) continuous, two numbers (one per factor).
// Paper finding: the discrete action space performs best.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  std::cout << "=== Fig 6: action space definitions ===\n\n";
  struct Variant {
    const char *Label;
    ActionSpaceKind Kind;
  };
  const Variant Variants[] = {
      {"discrete (two index heads)", ActionSpaceKind::Discrete},
      {"continuous, 1 number", ActionSpaceKind::Continuous1},
      {"continuous, 2 numbers", ActionSpaceKind::Continuous2},
  };

  double Best = -1e9;
  const char *BestLabel = "";
  for (const Variant &V : Variants) {
    NeuroVectorizerConfig Config = benchConfig();
    Config.ActionSpace = V.Kind;
    Config.Seed = 42;
    NeuroVectorizer NV(Config);
    LoopGenerator Gen(42);
    for (const GeneratedLoop &L : Gen.generateMany(150))
      NV.addTrainingProgram(L.Name, L.Source);
    TrainStats Stats = NV.train(8000);
    std::cout << "--- " << V.Label << " ---\n";
    Stats.RewardMean.print(std::cout, 8);
    std::cout << "final reward mean: "
              << Table::fmt(Stats.FinalRewardMean, 3) << "\n\n";
    if (Stats.FinalRewardMean > Best) {
      Best = Stats.FinalRewardMean;
      BestLabel = V.Label;
    }
  }
  std::cout << "best action space: " << BestLabel
            << " (paper: discrete)\n";
  return 0;
}
