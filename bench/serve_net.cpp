//===- bench/serve_net.cpp - Network daemon throughput bench --------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Drives the epoll annotation daemon (src/net) end-to-end over loopback:
// N client connections send batched annotate frames as fast as the
// daemon answers them, while a control connection hot-reloads the model
// mid-bench — the zero-downtime contract under load. Reports sustained
// annotated programs/s and the client-observed p50/p99 round-trip
// latency, and writes BENCH_serve_net.json for the CI perf gate.
//
// Every response is checked: a single non-OK result, shed frame, or
// failed reload during the measured window exits non-zero (correctness
// is gated; timing is reported and compared by tools/bench_compare.py).
//
//   serve_net [--smoke] [--connections N] [--batch B] [--seconds S]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "net/Client.h"
#include "net/NetServer.h"
#include "serve/ModelHost.h"
#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>

using namespace nv;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

uint64_t percentile(std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  const size_t Idx = std::min(
      Sorted.size() - 1, static_cast<size_t>(P * (Sorted.size() - 1)));
  return Sorted[Idx];
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  int Connections = 8;
  int BatchSize = 16;
  double Seconds = 5.0;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--connections" && I + 1 < Argc)
      Connections = std::atoi(Argv[++I]);
    else if (Arg == "--batch" && I + 1 < Argc)
      BatchSize = std::atoi(Argv[++I]);
    else if (Arg == "--seconds" && I + 1 < Argc)
      Seconds = std::atof(Argv[++I]);
    else {
      std::cerr << "usage: " << Argv[0]
                << " [--smoke] [--connections N] [--batch B] [--seconds S]\n";
      return 2;
    }
  }
  if (Smoke)
    Seconds = std::min(Seconds, 2.0);

  std::cout << "=== net: daemon throughput + mid-bench hot reload ===\n\n";
  std::cout << "training a small model...\n";
  NeuroVectorizerConfig Config = benchConfig();
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/100,
                                  /*TrainSteps=*/Smoke ? 1000 : 4000,
                                  /*Seed=*/42, Config);

  // Two checkpoints for the mid-bench flip: the trained model and a
  // further-trained one (distinct weights, same architecture).
  const std::string PathA = "serve_net_model_a.nvm";
  const std::string PathB = "serve_net_model_b.nvm";
  std::string Error;
  if (!NV->save(PathA, &Error)) {
    std::cerr << "save failed: " << Error << "\n";
    return 1;
  }
  NV->train(Smoke ? 500 : 2000);
  if (!NV->save(PathB, &Error)) {
    std::cerr << "save failed: " << Error << "\n";
    return 1;
  }

  // The daemon under test, on an ephemeral loopback port.
  ModelHost Models(NV->servingModelConfig());
  if (Models.reload(PathA, &Error) != LoadStatus::Ok) {
    std::cerr << "initial load failed: " << Error << "\n";
    return 1;
  }
  ServeConfig Serve;
  Serve.Threads = 2;
  AnnotationService Service(Models, Config.Embedding.Paths, Config.Target,
                            Serve);
  NetServerConfig Net;
  NetServer Server(Service, Models, Net);
  if (!Server.start(&Error)) {
    std::cerr << "start failed: " << Error << "\n";
    return 1;
  }
  const uint16_t Port = Server.port();

  // Workload: a pool of distinct synthetic loops, batched round-robin.
  // Repeats hit the plan cache (the steady-state serving regime); each
  // hot reload invalidates it, so the bench also pays the re-population
  // cost twice.
  LoopGenerator Gen(/*Seed=*/777);
  std::vector<GeneratedLoop> Pool = Gen.generateMany(64);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Annotated{0};
  std::atomic<uint64_t> Frames{0};
  std::atomic<uint64_t> Failed{0};
  std::vector<std::vector<uint64_t>> LatencyUs(
      static_cast<size_t>(Connections));

  auto Worker = [&](int Id) {
    NetClient Client;
    std::string WErr;
    if (!Client.connect("127.0.0.1", Port, &WErr)) {
      ++Failed;
      return;
    }
    size_t Next = static_cast<size_t>(Id) * 7;
    while (!Stop.load(std::memory_order_relaxed)) {
      net::AnnotateRequestBody Req;
      for (int B = 0; B < BatchSize; ++B) {
        const GeneratedLoop &L = Pool[Next++ % Pool.size()];
        net::WireProgram P;
        P.Name = L.Name;
        P.Source = L.Source;
        Req.Programs.push_back(std::move(P));
      }
      net::AnnotateResponseBody Res;
      net::WireStatus Status;
      const auto Start = std::chrono::steady_clock::now();
      if (!Client.annotate(Req, Res, Status, &WErr) ||
          Status != net::WireStatus::Ok ||
          Res.Results.size() != Req.Programs.size()) {
        ++Failed;
        return;
      }
      LatencyUs[static_cast<size_t>(Id)].push_back(
          static_cast<uint64_t>(secondsSince(Start) * 1e6));
      for (const net::WireResult &R : Res.Results)
        if (!R.Ok)
          ++Failed;
      Annotated.fetch_add(Res.Results.size(), std::memory_order_relaxed);
      Frames.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::cout << "driving " << Connections << " connections, batch "
            << BatchSize << ", " << Seconds << "s...\n";
  const auto BenchStart = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int I = 0; I < Connections; ++I)
    Threads.emplace_back(Worker, I);

  // Mid-bench hot reloads from a control connection: flip to B at ~40%,
  // back to A at ~70%. Zero downtime means zero failed requests.
  NetClient Control;
  uint64_t ReloadsOk = 0;
  if (!Control.connect("127.0.0.1", Port, &Error)) {
    std::cerr << "control connect failed: " << Error << "\n";
    Stop.store(true);
  }
  const double FlipAt[] = {0.4, 0.7};
  const std::string *FlipTo[] = {&PathB, &PathA};
  size_t Flip = 0;
  while (secondsSince(BenchStart) < Seconds) {
    if (Flip < 2 && secondsSince(BenchStart) >= FlipAt[Flip] * Seconds) {
      net::WireStatus Status;
      uint64_t Generation = 0;
      if (!Control.reload(*FlipTo[Flip], Status, &Generation, &Error) ||
          Status != net::WireStatus::Ok) {
        std::cerr << "mid-bench reload failed: " << Control.statusMessage()
                  << " " << Error << "\n";
        ++Failed;
      } else {
        ++ReloadsOk;
        std::cout << "  hot reload -> generation " << Generation << " at "
                  << Table::fmt(secondsSince(BenchStart), 2) << "s\n";
      }
      ++Flip;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Stop.store(true);
  for (std::thread &T : Threads)
    T.join();
  const double Elapsed = secondsSince(BenchStart);
  Server.shutdown();
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());

  std::vector<uint64_t> All;
  for (const std::vector<uint64_t> &L : LatencyUs)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  const double ProgramsPerSec = Annotated.load() / Elapsed;
  const uint64_t P50 = percentile(All, 0.50);
  const uint64_t P99 = percentile(All, 0.99);

  Table T({"metric", "value"});
  T.addRow({"connections", std::to_string(Connections)});
  T.addRow({"batch size", std::to_string(BatchSize)});
  T.addRow({"annotated programs", std::to_string(Annotated.load())});
  T.addRow({"programs/s", Table::fmt(ProgramsPerSec, 0)});
  T.addRow({"frame p50", Table::fmt(P50 / 1000.0, 2) + " ms"});
  T.addRow({"frame p99", Table::fmt(P99 / 1000.0, 2) + " ms"});
  T.addRow({"hot reloads", std::to_string(ReloadsOk)});
  T.addRow({"failed requests", std::to_string(Failed.load())});
  T.print(std::cout);

  BenchJson Json("serve_net");
  Json.add("connections", Connections);
  Json.add("batch_size", BatchSize);
  Json.add("annotated_programs", static_cast<double>(Annotated.load()));
  Json.add("programs_per_sec", ProgramsPerSec);
  Json.add("frame_p50_us", static_cast<double>(P50));
  Json.add("frame_p99_us", static_cast<double>(P99));
  Json.add("hot_reloads", static_cast<double>(ReloadsOk));
  Json.write("serve_net");

  // Correctness gate: the hot-reload contract is zero failed requests
  // and both flips landing; throughput is reported, not gated here
  // (tools/bench_compare.py owns regression detection).
  if (Failed.load() != 0 || ReloadsOk != 2) {
    std::cerr << "\nFAILED: " << Failed.load() << " failed requests, "
              << ReloadsOk << "/2 reloads\n";
    return 1;
  }
  std::cout << "\nOK: zero failed requests across " << Frames.load()
            << " frames and " << ReloadsOk << " hot reloads\n";
  return 0;
}
