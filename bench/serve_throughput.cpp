//===- bench/serve_throughput.cpp - Serving-layer throughput bench --------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Measures the batched, multi-threaded annotation service (src/serve)
// against the single-threaded annotate() loop it replaces:
//
//   - annotate() x N          one program at a time, one thread;
//   - annotateBatch, 1 thread batched forward + plan cache, no pool win;
//   - annotateBatch, 4/8 thr  plus parallel parse/extract/render;
//   - annotateBatch, warm     a second pass over the same programs, all
//                             sites answered from the LRU plan cache.
//
// The workload is NumPrograms synthetic loops with a duplication rate in
// the batch (templated/generated code repeats loops), which is where the
// dedup-by-context-hash and the cache earn their keep.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"

#include <chrono>
#include <iostream>

using namespace nv;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  constexpr int NumPrograms = 128; // Acceptance floor is 64.
  constexpr int DuplicateEvery = 4; // Every 4th request repeats a program.

  std::cout << "=== serve: batched annotation throughput ===\n\n";
  std::cout << "training a small model...\n";
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/100,
                                  /*TrainSteps=*/4000);

  // Build the request batch: fresh programs with periodic duplicates.
  LoopGenerator Gen(/*Seed=*/777);
  std::vector<AnnotationRequest> Requests;
  while (static_cast<int>(Requests.size()) < NumPrograms) {
    GeneratedLoop L = Gen.generate();
    Requests.push_back({L.Name, L.Source});
    if (static_cast<int>(Requests.size()) % DuplicateEvery == 0)
      Requests.push_back({L.Name + "_dup", L.Source});
  }
  Requests.resize(NumPrograms);
  std::cout << "requests: " << Requests.size() << "\n\n";

  Table T({"method", "ms", "programs/s", "speedup"});
  BenchJson Json("serve_throughput");
  Json.add("requests", Requests.size());

  // --- Reference: the one-at-a-time API -----------------------------------
  const auto LoopStart = std::chrono::steady_clock::now();
  std::vector<std::string> Reference;
  Reference.reserve(Requests.size());
  for (const AnnotationRequest &Req : Requests)
    Reference.push_back(NV->annotate(Req.Source));
  const double LoopMs = millisSince(LoopStart);
  T.addRow({"annotate() loop", Table::fmt(LoopMs),
            Table::fmt(Requests.size() * 1000.0 / LoopMs, 0),
            Table::fmt(1.0) + "x"});
  Json.add("annotate_loop_programs_per_sec",
           Requests.size() * 1000.0 / LoopMs);

  // --- Batched service at several pool sizes ------------------------------
  double PooledMs4 = 0.0;
  for (int Threads : {1, 4, 8}) {
    ServeConfig Serve;
    Serve.Threads = Threads;
    AnnotationService &Service = NV->service(Serve); // Fresh cache.
    const auto Start = std::chrono::steady_clock::now();
    std::vector<AnnotationResult> Results = Service.annotateBatch(Requests);
    const double Ms = millisSince(Start);
    if (Threads == 4)
      PooledMs4 = Ms;

    // Correctness guard: pooled output must match the reference exactly.
    for (size_t I = 0; I < Requests.size(); ++I) {
      if (!Results[I].Ok || Results[I].Annotated != Reference[I]) {
        std::cerr << "MISMATCH at request " << I << "\n";
        return 1;
      }
    }
    T.addRow({"annotateBatch, " + std::to_string(Threads) + " thr",
              Table::fmt(Ms), Table::fmt(Requests.size() * 1000.0 / Ms, 0),
              Table::fmt(LoopMs / Ms) + "x"});
    Json.add("batch_" + std::to_string(Threads) + "thr_programs_per_sec",
             Requests.size() * 1000.0 / Ms);

    if (Threads == 8) {
      // Warm pass: every site is now in the plan cache.
      const auto WarmStart = std::chrono::steady_clock::now();
      Service.annotateBatch(Requests);
      const double WarmMs = millisSince(WarmStart);
      T.addRow({"annotateBatch, warm cache", Table::fmt(WarmMs),
                Table::fmt(Requests.size() * 1000.0 / WarmMs, 0),
                Table::fmt(LoopMs / WarmMs) + "x"});
      Json.add("warm_cache_programs_per_sec",
               Requests.size() * 1000.0 / WarmMs);
      std::cout << "\nservice counters (8-thread service, both passes):\n";
      Service.stats().print(std::cout);
      std::cout << "\n";
      // Phase split of the 8-thread service (cold + warm pass combined).
      Json.add("phase_extract_micros",
               static_cast<double>(Service.stats().ExtractMicros.load()));
      Json.add("phase_infer_micros",
               static_cast<double>(Service.stats().InferMicros.load()));
      Json.add("phase_render_micros",
               static_cast<double>(Service.stats().RenderMicros.load()));
      Json.add("phase_total_micros",
               static_cast<double>(Service.stats().TotalMicros.load()));
    }
  }

  T.print(std::cout);
  std::cout << "\n4-thread pool vs single-thread loop: "
            << Table::fmt(LoopMs / PooledMs4) << "x\n";
  Json.add("speedup_4thr_vs_loop", LoopMs / PooledMs4);
  Json.write("serve");
  // Exit status reflects correctness only (checked above); timing is
  // reported, not gated, so contended CI runners cannot flake this bench.
  return 0;
}
