//===- bench/fig2_testsuite.cpp - Paper Fig 2 reproduction ----------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 2: brute-force-optimal performance on the LLVM
// vectorizer test suite, normalized to the baseline cost model. The paper
// finds every test at >= 1.0x with gaps growing to ~1.5x on the more
// complicated tests — "there is room for improvement for the current
// baseline cost model".
//
//===----------------------------------------------------------------------===//

#include "dataset/Suites.h"
#include "predictors/Search.h"
#include "rl/Env.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  std::vector<NamedProgram> Suite = vectorizerTestSuite();
  for (const NamedProgram &P : Suite) {
    const bool Added = Env.addProgram(P.Name, P.Source);
    if (!Added)
      std::cerr << "warning: could not load " << P.Name << "\n";
  }

  std::cout << "=== Fig 2: brute-force best vs baseline on the vectorizer "
               "test suite ===\n\n";
  Table T({"test", "baseline", "brute-force", "speedup"});
  std::vector<double> Speedups;
  for (size_t I = 0; I < Env.size(); ++I) {
    const double Base = Env.sample(I).BaselineCycles;
    BruteForceResult Best = bruteForceSearch(Env, I);
    const double Speedup = Base / Best.Cycles;
    Speedups.push_back(Speedup);
    T.addRow({Env.sample(I).Name, Table::fmt(Base, 0),
              Table::fmt(Best.Cycles, 0), Table::fmt(Speedup)});
  }
  T.print(std::cout);
  std::cout << "\nall >= 1.0: " << (minOf(Speedups) >= 1.0 ? "yes" : "NO")
            << " (paper: yes)\n";
  std::cout << "max speedup: " << Table::fmt(maxOf(Speedups))
            << "x (paper: up to ~1.5x)\n";
  std::cout << "mean speedup: " << Table::fmt(mean(Speedups)) << "x\n";
  return 0;
}
