//===- bench/fig7_benchmarks.cpp - Paper Fig 7 reproduction ---------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 7: twelve held-out benchmarks, comparing the baseline
// cost model, random search, Polly, NNS, decision tree, RL, and the
// brute-force oracle (all normalized to the baseline). Paper findings:
//   - RL 2.67x over baseline on average, only ~3% below brute force;
//   - NNS 2.65x, decision tree 2.47x (the learned embedding transfers to
//     methods that cannot train end-to-end);
//   - random search below baseline;
//   - Polly ~1.17x over baseline, well below RL.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "dataset/Suites.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "polly/Polly.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  std::cout << "=== Fig 7: held-out benchmarks, all methods (speedup over "
               "baseline) ===\n\n";
  std::cout << "training end-to-end RL on the synthetic dataset...\n";
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/200,
                                  /*TrainSteps=*/80000);
  std::cout << "labeling with brute force + fitting NNS/decision tree...\n";
  NV->fitSupervised(/*MaxSamples=*/200);

  Table T({"benchmark", "random", "Polly", "NNS", "dectree", "RL",
           "brute"});
  std::vector<double> Random, Polly, NNS, Tree, RL, Brute;
  for (const NamedProgram &B : evaluationBenchmarks()) {
    const double Base = NV->cyclesFor(B.Source, PredictMethod::Baseline);

    // Random search: expected performance over repeated uniform draws.
    double RandomCycles = 0.0;
    constexpr int RandomDraws = 20;
    for (int Draw = 0; Draw < RandomDraws; ++Draw)
      RandomCycles += NV->cyclesFor(B.Source, PredictMethod::Random);
    const double R = Base / (RandomCycles / RandomDraws);
    // Polly: transform, then the stock vectorizer decides.
    std::optional<Program> P = parseSource(B.Source);
    Program Transformed = applyPolly(*P);
    const double PollyCycles =
        NV->cyclesFor(printProgram(Transformed), PredictMethod::Baseline);
    const double Po = Base / PollyCycles;
    const double N = NV->speedupOverBaseline(B.Source, PredictMethod::NNS);
    const double D =
        NV->speedupOverBaseline(B.Source, PredictMethod::DecisionTree);
    const double L = NV->speedupOverBaseline(B.Source, PredictMethod::RL);
    const double BF =
        NV->speedupOverBaseline(B.Source, PredictMethod::BruteForce);

    Random.push_back(R);
    Polly.push_back(Po);
    NNS.push_back(N);
    Tree.push_back(D);
    RL.push_back(L);
    Brute.push_back(BF);
    T.addRow({B.Name, Table::fmt(R), Table::fmt(Po), Table::fmt(N),
              Table::fmt(D), Table::fmt(L), Table::fmt(BF)});
  }
  T.print(std::cout);

  std::cout << "\naverages (paper in parentheses):\n";
  std::cout << "  random       " << Table::fmt(mean(Random))
            << "x  (below 1.0)\n";
  std::cout << "  Polly        " << Table::fmt(mean(Polly))
            << "x  (~1.17x)\n";
  std::cout << "  NNS          " << Table::fmt(mean(NNS)) << "x  (2.65x)\n";
  std::cout << "  decision tree " << Table::fmt(mean(Tree))
            << "x (2.47x)\n";
  std::cout << "  RL           " << Table::fmt(mean(RL)) << "x  (2.67x)\n";
  std::cout << "  brute force  " << Table::fmt(mean(Brute)) << "x\n";
  std::cout << "  RL / brute-force = "
            << Table::fmt(100.0 * mean(RL) / mean(Brute), 1)
            << "% (paper: ~97%)\n";
  return 0;
}
