//===- bench/fig7_benchmarks.cpp - Paper Fig 7 reproduction ---------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 7: twelve held-out benchmarks, comparing the baseline
// cost model, random search, Polly, NNS, decision tree, RL, and the
// brute-force oracle (all normalized to the baseline). Paper findings:
//   - RL 2.67x over baseline on average, only ~3% below brute force;
//   - NNS 2.65x, decision tree 2.47x (the learned embedding transfers to
//     methods that cannot train end-to-end);
//   - random search below baseline;
//   - Polly ~1.17x over baseline, well below RL.
//
// `--smoke` runs the same pipeline at CI scale (small training set, few
// steps): the numbers are not paper-grade, but every stage — training,
// distillation, all seven methods — executes, so the figure path cannot
// bit-rot between full runs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "dataset/Suites.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "polly/Polly.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstring>
#include <iostream>

using namespace nv;

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    Smoke |= std::strcmp(argv[I], "--smoke") == 0;

  const int NumPrograms = Smoke ? 40 : 200;
  const long long TrainSteps = Smoke ? 1536 : 80000;
  const int RandomDraws = Smoke ? 5 : 20;

  std::cout << "=== Fig 7: held-out benchmarks, all methods (speedup over "
               "baseline) ===\n\n";
  if (Smoke)
    std::cout << "[smoke mode: reduced training budget, numbers are not "
                 "paper-grade]\n";
  std::cout << "training end-to-end RL on the synthetic dataset...\n";
  auto NV = makeTrainedVectorizer(NumPrograms, TrainSteps);
  std::cout << "labeling with brute force + fitting NNS/decision tree...\n";
  NV->fitSupervised(/*MaxSamples=*/static_cast<size_t>(NumPrograms));

  Table T({"benchmark", "random", "Polly", "NNS", "dectree", "RL",
           "brute"});
  std::vector<double> Random, Polly, NNS, Tree, RL, Brute;
  for (const NamedProgram &B : evaluationBenchmarks()) {
    const double Base = NV->cyclesFor(B.Source, PredictMethod::Baseline);

    // Random search: expected performance over repeated uniform draws.
    double RandomCycles = 0.0;
    for (int Draw = 0; Draw < RandomDraws; ++Draw)
      RandomCycles += NV->cyclesFor(B.Source, PredictMethod::Random);
    const double R = Base / (RandomCycles / RandomDraws);
    // Polly: transform, then the stock vectorizer decides.
    std::optional<Program> P = parseSource(B.Source);
    Program Transformed = applyPolly(*P);
    const double PollyCycles =
        NV->cyclesFor(printProgram(Transformed), PredictMethod::Baseline);
    const double Po = Base / PollyCycles;
    const double N = NV->speedupOverBaseline(B.Source, PredictMethod::NNS);
    const double D =
        NV->speedupOverBaseline(B.Source, PredictMethod::DecisionTree);
    const double L = NV->speedupOverBaseline(B.Source, PredictMethod::RL);
    const double BF =
        NV->speedupOverBaseline(B.Source, PredictMethod::BruteForce);

    Random.push_back(R);
    Polly.push_back(Po);
    NNS.push_back(N);
    Tree.push_back(D);
    RL.push_back(L);
    Brute.push_back(BF);
    T.addRow({B.Name, Table::fmt(R), Table::fmt(Po), Table::fmt(N),
              Table::fmt(D), Table::fmt(L), Table::fmt(BF)});
  }
  T.print(std::cout);

  std::cout << "\naverages (paper in parentheses):\n";
  std::cout << "  random       " << Table::fmt(mean(Random))
            << "x  (below 1.0)\n";
  std::cout << "  Polly        " << Table::fmt(mean(Polly))
            << "x  (~1.17x)\n";
  std::cout << "  NNS          " << Table::fmt(mean(NNS)) << "x  (2.65x)\n";
  std::cout << "  decision tree " << Table::fmt(mean(Tree))
            << "x (2.47x)\n";
  std::cout << "  RL           " << Table::fmt(mean(RL)) << "x  (2.67x)\n";
  std::cout << "  brute force  " << Table::fmt(mean(Brute)) << "x\n";
  std::cout << "  RL / brute-force = "
            << Table::fmt(100.0 * mean(RL) / mean(Brute), 1)
            << "% (paper: ~97%)\n";

  // Quality metrics for the perf trajectory. Deliberately no *_per_sec
  // keys: these are figure-quality numbers, not throughput, so the CI
  // regression gate reports them without gating on them.
  BenchJson Json(Smoke ? "fig7_benchmarks_smoke" : "fig7_benchmarks");
  Json.add("smoke", Smoke ? 1 : 0);
  Json.add("train_steps", static_cast<double>(TrainSteps));
  Json.add("random_mean_speedup", mean(Random));
  Json.add("polly_mean_speedup", mean(Polly));
  Json.add("nns_mean_speedup", mean(NNS));
  Json.add("tree_mean_speedup", mean(Tree));
  Json.add("rl_mean_speedup", mean(RL));
  Json.add("brute_mean_speedup", mean(Brute));
  Json.add("rl_vs_brute_pct", 100.0 * mean(RL) / mean(Brute));
  Json.write(Smoke ? "fig7_smoke" : "fig7");
  return 0;
}
