//===- bench/legality.cpp - Legality analysis throughput -------------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// The legality analysis runs on every serve-path cache miss, in front of
// the embedder: lowering a site to its access summary, then the dependence
// sweep (ZIV / SIV / GCD tests over all store<->access pairs), access
// classification, and the legal-(VF, IF) mask. This bench measures that
// stage in isolation — analyses/second over pre-parsed generated loops —
// plus the end-to-end cost with parsing included, so serve-path budgeting
// has a number to point at.
//
// Correctness guard (the bench fails, not flakes, on mismatch): for every
// site, the mask, the clamp, and the simulated compiler's legalize() must
// agree on every point of the (VF, IF) action grid.
//
//   $ ./legality [--smoke]          # --smoke: shorter timing windows (CI)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ir/Legality.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "sim/Compiler.h"
#include "support/Table.h"

#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>

using namespace nv;

namespace {

/// Runs Fn repeatedly for at least \p MinMs and returns executions/second.
double opsPerSec(const std::function<void()> &Fn, double MinMs) {
  using Clock = std::chrono::steady_clock;
  Fn(); // Warm-up.
  long long Iters = 0;
  const auto Start = Clock::now();
  double Ms = 0.0;
  do {
    Fn();
    ++Iters;
    Ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - Start)
             .count();
  } while (Ms < MinMs);
  return Iters * 1000.0 / Ms;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  const double MinMs = Smoke ? 40.0 : 200.0;

  std::cout << "=== legality: dependence analysis + plan masking ===\n"
            << (Smoke ? "(smoke mode: short timing windows)\n" : "") << "\n";

  BenchJson Json("legality");
  const SimCompiler Compiler;
  const TargetInfo &TI = Compiler.target();

  // The workload: generated loops across every template, parsed once.
  constexpr int NumPrograms = 96;
  LoopGenerator Gen(/*Seed=*/9090);
  std::vector<GeneratedLoop> Programs = Gen.generateMany(NumPrograms);
  std::vector<std::unique_ptr<Program>> Parsed;
  std::vector<std::vector<LoopSite>> AllSites;
  size_t TotalSites = 0;
  for (const GeneratedLoop &L : Programs) {
    std::optional<Program> P = parseSource(L.Source);
    if (!P) {
      std::cerr << "generator produced an unparsable program: " << L.Name
                << "\n";
      return 1;
    }
    Parsed.push_back(std::make_unique<Program>(std::move(*P)));
    AllSites.push_back(extractLoops(*Parsed.back()));
    TotalSites += AllSites.back().size();
  }

  // --- Guard: mask == clamp == simulator over the full action grid ------
  for (size_t I = 0; I < Parsed.size(); ++I) {
    const std::vector<LoopSummary> Sums =
        lowerAllLoops(*Parsed[I], AllSites[I], TI.MaxVF);
    for (const LoopSummary &Sum : Sums) {
      const LegalitySummary Legal = analyzeLegality(Sum, TI);
      for (int VF : TI.vfActions()) {
        for (int IF : TI.ifActions()) {
          const VectorPlan Plan{VF, IF};
          const bool ByMask = Legal.isLegal(Plan, TI);
          const bool ByClamp = Legal.clamp(Plan, TI) == Plan;
          const bool BySim = Compiler.legalize(Sum, Plan) == Plan;
          if (ByMask != ByClamp || ByMask != BySim) {
            std::cerr << "MISMATCH: mask/clamp/simulator disagree on "
                      << Programs[I].Name << " plan (" << VF << ", " << IF
                      << ")\n";
            return 1;
          }
        }
      }
    }
  }

  // --- Analysis alone: lowering + dependence sweep + mask ---------------
  const double AnalyzeOps = opsPerSec(
      [&] {
        for (size_t I = 0; I < Parsed.size(); ++I) {
          const std::vector<LoopSummary> Sums =
              lowerAllLoops(*Parsed[I], AllSites[I], TI.MaxVF);
          for (const LoopSummary &Sum : Sums) {
            const LegalitySummary Legal = analyzeLegality(Sum, TI);
            volatile int Sink = Legal.MaxSafeVF;
            (void)Sink;
          }
        }
      },
      MinMs);

  // --- With the parser included (the cold-path shape) -------------------
  const double FullOps = opsPerSec(
      [&] {
        for (const GeneratedLoop &L : Programs) {
          std::optional<Program> P = parseSource(L.Source);
          std::vector<LoopSite> Sites = extractLoops(*P);
          const std::vector<LoopSummary> Sums =
              lowerAllLoops(*P, Sites, TI.MaxVF);
          for (const LoopSummary &Sum : Sums) {
            const LegalitySummary Legal = analyzeLegality(Sum, TI);
            volatile int Sink = Legal.MaxSafeVF;
            (void)Sink;
          }
        }
      },
      MinMs);

  const double AnalysesPerSec = AnalyzeOps * static_cast<double>(TotalSites);
  const double FullPerSec = FullOps * static_cast<double>(TotalSites);

  Table T({"stage", "analyses/s"});
  T.addRow({"lower + analyze", Table::fmt(AnalysesPerSec, 0)});
  T.addRow({"parse + lower + analyze", Table::fmt(FullPerSec, 0)});
  T.print(std::cout);
  std::cout << "\n";

  Json.add("legality_analyses_per_sec", AnalysesPerSec);
  Json.add("legality_with_parse_analyses_per_sec", FullPerSec);
  Json.write("legality");
  // Exit status reflects correctness only (the guard above); timing is
  // reported, not gated.
  return 0;
}
