//===- bench/fig9_mibench.cpp - Paper Fig 9 reproduction ------------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 9: transfer to MiBench-style embedded programs where
// loops are a minor share of the runtime (serial recurrences, indirect
// control dominate; "vectorization for some of the MiBench benchmarks is
// not possible"). Paper findings: RL outperforms both Polly and the
// baseline on every benchmark, with a modest 1.1x average.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "dataset/Suites.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "polly/Polly.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  std::cout << "=== Fig 9: MiBench transfer (speedup over baseline) "
               "===\n\n";
  std::cout << "training end-to-end RL on the synthetic dataset...\n";
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/200,
                                  /*TrainSteps=*/40000);

  Table T({"benchmark", "Polly", "RL"});
  std::vector<double> Polly, RL;
  bool RLAlwaysBest = true;
  for (const NamedProgram &B : miBenchSuite()) {
    const double Base = NV->cyclesFor(B.Source, PredictMethod::Baseline);
    std::optional<Program> P = parseSource(B.Source);
    Program Transformed = applyPolly(*P);
    const double Po =
        Base / NV->cyclesFor(printProgram(Transformed),
                             PredictMethod::Baseline);
    const double L = NV->speedupOverBaseline(B.Source, PredictMethod::RL);
    Polly.push_back(Po);
    RL.push_back(L);
    RLAlwaysBest &= L >= Po && L >= 1.0;
    T.addRow({B.Name, Table::fmt(Po), Table::fmt(L)});
  }
  T.print(std::cout);

  std::cout << "\naverages (paper in parentheses):\n";
  std::cout << "  Polly " << Table::fmt(mean(Polly)) << "x (~1.0x)\n";
  std::cout << "  RL    " << Table::fmt(mean(RL)) << "x (1.1x)\n";
  std::cout << "RL >= Polly and >= baseline everywhere: "
            << (RLAlwaysBest ? "yes" : "NO") << " (paper: yes)\n";
  return 0;
}
