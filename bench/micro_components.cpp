//===- bench/micro_components.cpp - Component micro-benchmarks -------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Throughput measurements of the pipeline stages: parsing, loop extraction
// + lowering, the machine model, path-context extraction, code2vec
// encode/backward — these bound the simulated "compilations per second"
// the RL training loop sustains — plus the headline comparison for the
// serving hot path: the batched embed+policy forward through the pre-PR
// kernels (naive allocating matmul/addRowBroadcast/activation-copy
// pipeline, reproduced below op for op) against the blocked, fused,
// allocation-free workspace kernels (nn/Kernels.h).
//
// A correctness guard recomputes the forward through the naive ops with
// the *same weights* and requires identical greedy actions; timing is
// reported (and written to BENCH_micro.json), not gated, so contended CI
// runners cannot flake this bench.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "nn/Distributions.h"
#include "sim/Compiler.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>

using namespace nv;

namespace {

const char *Kernel = R"(
float A[256][256]; float B[256][256]; float C[256][256]; float alpha;
void kernel() {
  for (int i = 0; i < 256; i++) {
    for (int j = 0; j < 256; j++) {
      float sum = 0;
      for (int k = 0; k < 256; k++) {
        sum += alpha * A[i][k] * B[k][j];
      }
      C[i][j] = sum;
    }
  }
})";

/// Runs Fn repeatedly for at least \p MinMs and returns executions/second.
double opsPerSec(const std::function<void()> &Fn, double MinMs = 150.0) {
  using Clock = std::chrono::steady_clock;
  Fn(); // Warm-up.
  long long Iters = 0;
  const auto Start = Clock::now();
  double Ms = 0.0;
  do {
    Fn();
    ++Iters;
    Ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - Start)
             .count();
  } while (Ms < MinMs);
  return Iters * 1000.0 / Ms;
}

/// The pre-PR forward path, op for op: naive allocating kernels
/// (nn/Matrix.h free functions), per-call cache/temporary allocations, the
/// input-caching copies the old LinearLayer made, and the copy-in/copy-out
/// activation layers. Weights are *shared* with the live model so the
/// guard below can require identical decisions.
struct LegacyForward {
  // Borrowed parameter values.
  const Matrix &TokenEmb, &PathEmb, &EW, &EB, &Attn;
  const Matrix &W1, &B1, &W2, &B2, &AW, &AB, &VW, &VB;
  int TokenDim, PathDim, CodeDim;

  LegacyForward(Code2Vec &Embedder, Policy &Pol)
      : TokenEmb(Embedder.params()[0]->Value),
        PathEmb(Embedder.params()[1]->Value),
        EW(Embedder.params()[2]->Value), EB(Embedder.params()[3]->Value),
        Attn(Embedder.params()[4]->Value), W1(Pol.params()[0]->Value),
        B1(Pol.params()[1]->Value), W2(Pol.params()[2]->Value),
        B2(Pol.params()[3]->Value), AW(Pol.params()[4]->Value),
        AB(Pol.params()[5]->Value), VW(Pol.params()[6]->Value),
        VB(Pol.params()[7]->Value),
        TokenDim(Embedder.config().TokenDim),
        PathDim(Embedder.config().PathDim),
        CodeDim(Embedder.config().CodeDim) {}

  Matrix encodeBatch(const std::vector<std::vector<PathContext>> &Batch) {
    const int InDim = 2 * TokenDim + PathDim;
    Matrix V(static_cast<int>(Batch.size()), CodeDim);
    for (size_t S = 0; S < Batch.size(); ++S) {
      const auto &Contexts = Batch[S];
      if (Contexts.empty())
        continue;
      const int N = static_cast<int>(Contexts.size());
      Matrix X(N, InDim); // Fresh per call, as the old SampleCache was.
      for (int I = 0; I < N; ++I) {
        const PathContext &Ctx = Contexts[I];
        double *Row = X.rowPtr(I);
        const double *Src = TokenEmb.rowPtr(Ctx.SrcToken);
        const double *Path = PathEmb.rowPtr(Ctx.Path);
        const double *Dst = TokenEmb.rowPtr(Ctx.DstToken);
        for (int D = 0; D < TokenDim; ++D)
          Row[D] = Src[D];
        for (int D = 0; D < PathDim; ++D)
          Row[TokenDim + D] = Path[D];
        for (int D = 0; D < TokenDim; ++D)
          Row[TokenDim + PathDim + D] = Dst[D];
      }
      Matrix C = addRowBroadcast(matmul(X, EW), EB);
      for (double &Value : C.raw())
        Value = std::tanh(Value);
      std::vector<double> Scores(N);
      for (int I = 0; I < N; ++I) {
        double Dot = 0.0;
        const double *CRow = C.rowPtr(I);
        for (int D = 0; D < CodeDim; ++D)
          Dot += CRow[D] * Attn.at(0, D);
        Scores[I] = Dot;
      }
      const std::vector<double> Alpha = softmax(Scores);
      double *VRow = V.rowPtr(static_cast<int>(S));
      for (int I = 0; I < N; ++I) {
        const double *CRow = C.rowPtr(I);
        for (int D = 0; D < CodeDim; ++D)
          VRow[D] += Alpha[I] * CRow[D];
      }
    }
    return V;
  }

  /// Old LinearLayer::forward: cache copy + naive matmul + broadcast copy.
  static Matrix linear(const Matrix &X, const Matrix &W, const Matrix &B) {
    Matrix Cached = X; // CachedX = X.
    (void)Cached;
    return addRowBroadcast(matmul(X, W), B);
  }

  /// Old ActivationLayer::forward: copy in, transform, cache copy.
  static Matrix tanhLayer(const Matrix &X) {
    Matrix Y = X;
    for (double &V : Y.raw())
      V = std::tanh(V);
    Matrix Cached = Y; // CachedY = Y.
    (void)Cached;
    return Y;
  }

  /// Old Policy::forward over the 64x64 trunk + heads.
  void policyForward(const Matrix &States, Matrix &HeadOut,
                     Matrix &ValueOut) {
    Matrix Cur = States;
    Cur = linear(Cur, W1, B1);
    Cur = tanhLayer(Cur);
    Cur = linear(Cur, W2, B2);
    for (double &V : Cur.raw()) // Policy's extra trunk tanh.
      V = std::tanh(V);
    Matrix TrunkOut = Cur;
    HeadOut = linear(TrunkOut, AW, AB);
    ValueOut = linear(TrunkOut, VW, VB);
  }
};

} // namespace

int main() {
  BenchJson Json("micro_components");
  std::cout << "=== micro: pipeline component throughput ===\n\n";

  // --- Pipeline components (unchanged scope from the gbench version) -----
  {
    const double Ops = opsPerSec([&] {
      std::optional<Program> P = parseSource(Kernel);
      if (!P)
        std::abort();
    });
    std::cout << "parse:                " << static_cast<long long>(Ops)
              << " ops/s\n";
    Json.add("parse_ops_per_sec", Ops);
  }

  std::optional<Program> Prog = parseSource(Kernel);
  std::vector<LoopSite> Sites = extractLoops(*Prog);
  {
    const double Ops = opsPerSec([&] {
      std::vector<LoopSite> S = extractLoops(*Prog);
      LoopSummary Summary = lowerLoop(*Prog, S[0], 64);
      (void)Summary;
    });
    std::cout << "extract+lower:        " << static_cast<long long>(Ops)
              << " ops/s\n";
    Json.add("extract_lower_ops_per_sec", Ops);
  }
  {
    LoopSummary Summary = lowerLoop(*Prog, Sites[0], 64);
    Machine Mach;
    int VF = 1;
    volatile double Sink = 0.0;
    const double Ops = opsPerSec([&] {
      Sink = Mach.loopCycles(Summary, VF, 4);
      VF = VF == 64 ? 1 : VF * 2;
    });
    (void)Sink;
    std::cout << "machine model:        " << static_cast<long long>(Ops)
              << " ops/s\n";
    Json.add("machine_model_ops_per_sec", Ops);
  }
  {
    SimCompiler Compiler;
    SimCompiler::Precompiled Pre = Compiler.precompile(*Prog);
    std::vector<VectorPlan> Plans(Pre.Summaries.size(), VectorPlan{8, 4});
    volatile double Sink = 0.0;
    const double Ops = opsPerSec([&] {
      bool TimedOut = false;
      Sink = Compiler.runPrecompiled(Pre, Plans, TimedOut);
    });
    (void)Sink;
    std::cout << "precompiled step:     " << static_cast<long long>(Ops)
              << " ops/s\n";
    Json.add("precompiled_step_ops_per_sec", Ops);
  }
  PathContextConfig PathConfig;
  {
    const double Ops = opsPerSec([&] {
      auto Contexts = extractPathContexts(*Sites[0].Outer, PathConfig);
      if (Contexts.empty())
        std::abort();
    });
    std::cout << "path contexts:        " << static_cast<long long>(Ops)
              << " ops/s\n";
    Json.add("path_contexts_ops_per_sec", Ops);
  }

  // --- The headline: batched embed+policy forward, old vs new kernels ----
  std::cout << "\n=== micro: batched forward (embed+policy), pre-PR vs "
               "workspace kernels ===\n\n";

  // A serving-shaped batch: distinct generated loops' context bags.
  constexpr int BatchLoops = 48;
  LoopGenerator Gen(/*Seed=*/321);
  std::vector<std::vector<PathContext>> Bags;
  while (static_cast<int>(Bags.size()) < BatchLoops) {
    GeneratedLoop L = Gen.generate();
    std::optional<Program> P = parseSource(L.Source);
    if (!P)
      continue;
    std::vector<LoopSite> LS = extractLoops(*P);
    for (const LoopSite &Site : LS) {
      Bags.push_back(extractPathContexts(*Site.Outer, PathConfig));
      if (static_cast<int>(Bags.size()) == BatchLoops)
        break;
    }
  }

  NeuroVectorizerConfig Config = benchConfig();
  RNG Rng(7);
  Code2Vec Embedder(Config.Embedding, Rng);
  const TargetInfo Target = Config.Target;
  const int NumVF = static_cast<int>(Target.vfActions().size());
  const int NumIF = static_cast<int>(Target.ifActions().size());
  Policy Pol(ActionSpaceKind::Discrete, Embedder.codeDim(), Config.Hidden,
             NumVF, NumIF, Rng);
  LegacyForward Legacy(Embedder, Pol);

  // Correctness guard: identical weights must give identical greedy
  // actions through both paths.
  {
    Matrix States;
    Embedder.encodeBatchInto(Bags, States);
    Pol.forward(States);
    Matrix LegacyStates = Legacy.encodeBatch(Bags);
    Matrix HeadOut, ValueOut;
    Legacy.policyForward(LegacyStates, HeadOut, ValueOut);
    for (int Row = 0; Row < static_cast<int>(Bags.size()); ++Row) {
      const ActionRecord New = Pol.greedyAction(Row);
      std::vector<double> VFLogits(NumVF), IFLogits(NumIF);
      for (int I = 0; I < NumVF; ++I)
        VFLogits[I] = HeadOut.at(Row, I);
      for (int I = 0; I < NumIF; ++I)
        IFLogits[I] = HeadOut.at(Row, NumVF + I);
      if (New.VFIdx != argmax(VFLogits) || New.IFIdx != argmax(IFLogits)) {
        std::cerr << "MISMATCH: legacy and kernel forwards disagree at row "
                  << Row << "\n";
        return 1;
      }
    }
  }

  const double OldOps = opsPerSec([&] {
    Matrix States = Legacy.encodeBatch(Bags);
    Matrix HeadOut, ValueOut;
    Legacy.policyForward(States, HeadOut, ValueOut);
  });
  Matrix NewStates; // Warm buffers live across iterations, as in serving.
  const double NewOps = opsPerSec([&] {
    Embedder.encodeBatchInto(Bags, NewStates);
    Pol.forward(NewStates);
  });
  ThreadPool Pool(4);
  const double PooledOps = opsPerSec([&] {
    Embedder.encodeBatchInto(Bags, NewStates, &Pool);
    Pol.forward(NewStates, &Pool);
  });

  const double LoopsOld = OldOps * BatchLoops;
  const double LoopsNew = NewOps * BatchLoops;
  const double LoopsPooled = PooledOps * BatchLoops;
  std::cout << "pre-PR kernels:       " << static_cast<long long>(LoopsOld)
            << " loops/s\n";
  std::cout << "workspace kernels:    " << static_cast<long long>(LoopsNew)
            << " loops/s   (" << LoopsNew / LoopsOld << "x)\n";
  std::cout << "workspace + 4-thread: " << static_cast<long long>(LoopsPooled)
            << " loops/s   (" << LoopsPooled / LoopsOld << "x)\n";
  Json.add("batched_forward_old_loops_per_sec", LoopsOld);
  Json.add("batched_forward_new_loops_per_sec", LoopsNew);
  Json.add("batched_forward_pooled_loops_per_sec", LoopsPooled);
  Json.add("batched_forward_speedup", LoopsNew / LoopsOld);

  // --- Quantized serving forward (int8 shadows, inference path) ----------
  // The serving hot path proper: borrowed-span encode + no-cache policy
  // forward, fp32 vs int8 (docs/quantization.md). The guard is a numeric
  // tolerance on the code vectors, not greedy-action equality — with
  // random bench weights the argmax margins are arbitrarily thin, while a
  // trained policy's margins dwarf the quantization error (that claim is
  // pinned by the plan-equality tests in ServeTest).
  {
    std::vector<ContextSpan> Spans;
    Spans.reserve(Bags.size());
    for (const std::vector<PathContext> &Bag : Bags)
      Spans.push_back({Bag.data(), Bag.size()});

    Matrix Fp32States;
    const double ServeOps = opsPerSec([&] {
      Embedder.encodeSpansInto(Spans, Fp32States);
      Pol.forward(Fp32States, nullptr, /*ForBackward=*/false);
    });

    Embedder.quantizeForInference();
    Pol.quantizeForInference();
    Matrix QuantStates;
    Embedder.encodeSpansInto(Spans, QuantStates);
    double MaxAbs = 0.0, MaxErr = 0.0;
    for (int Row = 0; Row < Fp32States.rows(); ++Row)
      for (int Col = 0; Col < Fp32States.cols(); ++Col) {
        MaxAbs = std::max(MaxAbs, std::fabs(Fp32States.at(Row, Col)));
        MaxErr = std::max(MaxErr, std::fabs(Fp32States.at(Row, Col) -
                                            QuantStates.at(Row, Col)));
      }
    if (MaxErr > 0.05 * (1.0 + MaxAbs)) {
      std::cerr << "MISMATCH: quantized encode drifted " << MaxErr
                << " from fp32 (max |fp32| " << MaxAbs << ")\n";
      return 1;
    }

    const double QuantOps = opsPerSec([&] {
      Embedder.encodeSpansInto(Spans, QuantStates);
      Pol.forward(QuantStates, nullptr, /*ForBackward=*/false);
    });
    Embedder.clearQuantized();
    Pol.clearQuantized();

    const double LoopsServe = ServeOps * BatchLoops;
    const double LoopsQuant = QuantOps * BatchLoops;
    std::cout << "serve fp32 forward:   " << static_cast<long long>(LoopsServe)
              << " loops/s\n";
    std::cout << "serve int8 forward:   " << static_cast<long long>(LoopsQuant)
              << " loops/s   (" << LoopsQuant / LoopsServe << "x)\n";
    Json.add("batched_forward_serve_loops_per_sec", LoopsServe);
    Json.add("batched_forward_quantized_loops_per_sec", LoopsQuant);
    Json.add("batched_forward_quantized_speedup", LoopsQuant / LoopsServe);
  }

  // Encode backward (training-side component).
  {
    Matrix dV(static_cast<int>(Bags.size()), Embedder.codeDim(), 0.01);
    std::vector<Param *> Params = Embedder.params();
    const double Ops = opsPerSec([&] {
      for (Param *P : Params)
        P->zeroGrad();
      Embedder.encodeBatchInto(Bags, NewStates);
      Embedder.backward(dV);
    });
    std::cout << "encode+backward:      "
              << static_cast<long long>(Ops * BatchLoops) << " loops/s\n";
    Json.add("encode_backward_loops_per_sec", Ops * BatchLoops);
  }

  std::cout << "\n";
  Json.write("micro");
  // Exit status reflects correctness only (the guard above); timing is
  // reported, not gated, so contended CI runners cannot flake this bench.
  return 0;
}
