//===- bench/micro_components.cpp - Component micro-benchmarks -------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// google-benchmark throughput measurements of the pipeline stages: parsing,
// loop extraction + lowering, the machine model, path-context extraction,
// code2vec encode/backward, and one PPO minibatch. These bound the
// simulated "compilations per second" the RL training loop sustains.
//
//===----------------------------------------------------------------------===//

#include "embedding/Code2Vec.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "sim/Compiler.h"

#include <benchmark/benchmark.h>

using namespace nv;

static const char *Kernel = R"(
float A[256][256]; float B[256][256]; float C[256][256]; float alpha;
void kernel() {
  for (int i = 0; i < 256; i++) {
    for (int j = 0; j < 256; j++) {
      float sum = 0;
      for (int k = 0; k < 256; k++) {
        sum += alpha * A[i][k] * B[k][j];
      }
      C[i][j] = sum;
    }
  }
})";

static void BM_ParseProgram(benchmark::State &State) {
  for (auto _ : State) {
    std::optional<Program> P = parseSource(Kernel);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseProgram);

static void BM_ExtractAndLower(benchmark::State &State) {
  std::optional<Program> P = parseSource(Kernel);
  for (auto _ : State) {
    std::vector<LoopSite> Sites = extractLoops(*P);
    LoopSummary Summary = lowerLoop(*P, Sites[0], 64);
    benchmark::DoNotOptimize(Summary);
  }
}
BENCHMARK(BM_ExtractAndLower);

static void BM_MachineModel(benchmark::State &State) {
  std::optional<Program> P = parseSource(Kernel);
  std::vector<LoopSite> Sites = extractLoops(*P);
  LoopSummary Summary = lowerLoop(*P, Sites[0], 64);
  Machine Mach;
  int VF = 1;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Mach.loopCycles(Summary, VF, 4));
    VF = VF == 64 ? 1 : VF * 2;
  }
}
BENCHMARK(BM_MachineModel);

static void BM_PrecompiledStep(benchmark::State &State) {
  std::optional<Program> P = parseSource(Kernel);
  SimCompiler Compiler;
  SimCompiler::Precompiled Pre = Compiler.precompile(*P);
  std::vector<VectorPlan> Plans(Pre.Summaries.size(), VectorPlan{8, 4});
  for (auto _ : State) {
    bool TimedOut = false;
    benchmark::DoNotOptimize(
        Compiler.runPrecompiled(Pre, Plans, TimedOut));
  }
}
BENCHMARK(BM_PrecompiledStep);

static void BM_PathContexts(benchmark::State &State) {
  std::optional<Program> P = parseSource(Kernel);
  std::vector<LoopSite> Sites = extractLoops(*P);
  PathContextConfig Config;
  for (auto _ : State) {
    auto Contexts = extractPathContexts(*Sites[0].Outer, Config);
    benchmark::DoNotOptimize(Contexts);
  }
}
BENCHMARK(BM_PathContexts);

static void BM_Code2VecEncode(benchmark::State &State) {
  std::optional<Program> P = parseSource(Kernel);
  std::vector<LoopSite> Sites = extractLoops(*P);
  Code2VecConfig Config;
  RNG Rng(1);
  Code2Vec Embedder(Config, Rng);
  auto Contexts = extractPathContexts(*Sites[0].Outer, Config.Paths);
  for (auto _ : State) {
    Matrix V = Embedder.encode(Contexts);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Code2VecEncode);

static void BM_Code2VecBackward(benchmark::State &State) {
  std::optional<Program> P = parseSource(Kernel);
  std::vector<LoopSite> Sites = extractLoops(*P);
  Code2VecConfig Config;
  RNG Rng(1);
  Code2Vec Embedder(Config, Rng);
  auto Contexts = extractPathContexts(*Sites[0].Outer, Config.Paths);
  Matrix dV(1, Config.CodeDim, 0.01);
  for (auto _ : State) {
    Matrix V = Embedder.encode(Contexts);
    Embedder.backward(dV);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_Code2VecBackward);

BENCHMARK_MAIN();
