//===- bench/fig5_hyperparams.cpp - Paper Fig 5 reproduction --------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Reproduces Figure 5: reward mean and training loss vs training steps for
// different learning rates (5e-5, 5e-4, 5e-3), FCNN architectures (64x64,
// 128x128, 256x256), and batch sizes. Paper findings to compare against:
//   - 5e-3 never reaches the maximum of the smaller rates and has the
//     highest loss;
//   - FCNN width makes only minor differences;
//   - smaller batches converge with fewer samples; the policy reaches a
//     rewarding state (> 0) within ~5k samples at the smallest batch.
// Note the compute scaling: the paper trains to 500k steps on a cluster;
// this harness runs a few thousand steps per configuration, so the sweep
// shows the same orderings at compressed scale (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

namespace {

void runConfig(const std::string &Label, NeuroVectorizerConfig Config,
               long long Steps) {
  Config.Seed = 42;
  NeuroVectorizer NV(Config);
  LoopGenerator Gen(42);
  for (const GeneratedLoop &L : Gen.generateMany(150))
    NV.addTrainingProgram(L.Name, L.Source);
  TrainStats Stats = NV.train(Steps);
  std::cout << "--- " << Label << " ---\n";
  Stats.RewardMean.print(std::cout, 8);
  Stats.Loss.print(std::cout, 8);
  std::cout << "final reward mean: "
            << Table::fmt(Stats.FinalRewardMean, 3) << "\n\n";
}

} // namespace

int main() {
  std::cout << "=== Fig 5: hyperparameter sweep (reward mean / training "
               "loss vs steps) ===\n\n";

  std::cout << "## learning rate sweep (batch 256, FCNN 64x64)\n\n";
  for (double LR : {5e-5, 5e-4, 5e-3}) {
    NeuroVectorizerConfig Config = benchConfig();
    Config.PPO.LearningRate = LR;
    runConfig("lr = " + Table::fmt(LR, 5), Config, 6400);
  }

  std::cout << "## FCNN architecture sweep (lr 2e-3, batch 256)\n\n";
  for (int Width : {64, 128, 256}) {
    NeuroVectorizerConfig Config = benchConfig();
    Config.Hidden = {Width, Width};
    runConfig("fcnn " + std::to_string(Width) + "x" + std::to_string(Width),
              Config, 6400);
  }

  std::cout << "## batch size sweep (lr 2e-3, FCNN 64x64)\n\n";
  for (int Batch : {256, 512, 1024}) {
    NeuroVectorizerConfig Config = benchConfig();
    Config.PPO.BatchSize = Batch;
    runConfig("batch " + std::to_string(Batch), Config, 6400);
  }

  std::cout << "paper reference: lr 5e-3 worst (never reaches the smaller "
               "rates' maximum);\nFCNN width has minor effect; smaller "
               "batches converge in fewer samples.\n";
  return 0;
}
