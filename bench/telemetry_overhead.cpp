//===- bench/telemetry_overhead.cpp - Instrumentation cost bench ----------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Measures what the observability layer costs the serving hot path:
// warm-cache annotateBatch throughput with telemetry on
// (ServeConfig::Telemetry, the default — per-phase histograms + pool
// queue metrics) versus off, and with trace sampling enabled on top.
//
// Methodology: both services run the same warm-cache workload in
// alternating rounds and each configuration keeps its best round, so
// transient machine noise (a background task hitting one round) cannot
// charge its cost to either side. The acceptance bar is overhead within
// NV_TELEMETRY_MAX_OVERHEAD (default 3%); the bench exits 1 beyond it,
// which is what lets CI pin a 3% bound that the coarse 25% baseline gate
// cannot.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "support/Telemetry.h"

#include <chrono>
#include <cstdlib>
#include <iostream>

using namespace nv;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// One warm-cache pass; returns milliseconds.
double runPass(AnnotationService &Service,
               const std::vector<AnnotationRequest> &Requests) {
  const auto Start = std::chrono::steady_clock::now();
  Service.annotateBatch(Requests);
  return millisSince(Start);
}

} // namespace

int main() {
  constexpr int NumPrograms = 128;
  constexpr int DuplicateEvery = 4;
  constexpr int Rounds = 7; ///< Best-of per configuration.

  double MaxOverhead = 0.03;
  if (const char *Env = std::getenv("NV_TELEMETRY_MAX_OVERHEAD"))
    MaxOverhead = std::atof(Env);

  std::cout << "=== telemetry: instrumented vs uninstrumented serve ===\n\n";
  std::cout << "training a small model...\n";
  auto NV = makeTrainedVectorizer(/*NumPrograms=*/100, /*TrainSteps=*/4000);

  LoopGenerator Gen(/*Seed=*/777);
  std::vector<AnnotationRequest> Requests;
  while (static_cast<int>(Requests.size()) < NumPrograms) {
    GeneratedLoop L = Gen.generate();
    Requests.push_back({L.Name, L.Source});
    if (static_cast<int>(Requests.size()) % DuplicateEvery == 0)
      Requests.push_back({L.Name + "_dup", L.Source});
  }
  Requests.resize(NumPrograms);
  std::cout << "requests: " << Requests.size() << " (warm cache, best of "
            << Rounds << " rounds)\n\n";

  // Two services over the same model, differing only in the telemetry
  // knob. Separate instances so each has its own (fully warmed) plan
  // cache; NV->service() would rebuild and share one.
  ServeConfig PlainConfig;
  PlainConfig.Threads = 4;
  PlainConfig.Telemetry = false;
  AnnotationService Plain(NV->embedder(), NV->backends(),
                          NeuroVectorizerConfig().Embedding.Paths,
                          NV->target(), PlainConfig);

  ServeConfig InstrConfig;
  InstrConfig.Threads = 4;
  InstrConfig.Telemetry = true;
  AnnotationService Instrumented(NV->embedder(), NV->backends(),
                                 NeuroVectorizerConfig().Embedding.Paths,
                                 NV->target(), InstrConfig);

  // Warm both caches (and the pools) before measuring anything.
  Plain.annotateBatch(Requests);
  Instrumented.annotateBatch(Requests);

  // Alternating best-of rounds: noise hits both sides equally.
  double PlainMs = 1e300, InstrMs = 1e300;
  for (int R = 0; R < Rounds; ++R) {
    PlainMs = std::min(PlainMs, runPass(Plain, Requests));
    InstrMs = std::min(InstrMs, runPass(Instrumented, Requests));
  }

  // A third configuration: histograms AND trace sampling on (every
  // batch), reported for context but not gated — tracing is an opt-in
  // debugging knob, not the steady state.
  Telemetry::trace().setSampleEvery(1);
  double TracedMs = 1e300;
  for (int R = 0; R < Rounds; ++R)
    TracedMs = std::min(TracedMs, runPass(Instrumented, Requests));
  Telemetry::trace().setSampleEvery(0);

  const double PlainPerSec = Requests.size() * 1000.0 / PlainMs;
  const double InstrPerSec = Requests.size() * 1000.0 / InstrMs;
  const double TracedPerSec = Requests.size() * 1000.0 / TracedMs;
  const double Overhead = (PlainPerSec - InstrPerSec) / PlainPerSec;
  const double TraceOverhead = (PlainPerSec - TracedPerSec) / PlainPerSec;

  Table T({"configuration", "ms", "programs/s", "overhead"});
  T.addRow({"telemetry off", Table::fmt(PlainMs), Table::fmt(PlainPerSec, 0),
            "-"});
  T.addRow({"histograms on (default)", Table::fmt(InstrMs),
            Table::fmt(InstrPerSec, 0),
            Table::fmt(Overhead * 100.0, 1) + "%"});
  T.addRow({"histograms + tracing", Table::fmt(TracedMs),
            Table::fmt(TracedPerSec, 0),
            Table::fmt(TraceOverhead * 100.0, 1) + "%"});
  T.print(std::cout);

  std::cout << "\nper-phase latency distributions (instrumented service):\n";
  Telemetry::metrics().histogramTable().print(std::cout);

  BenchJson Json("telemetry_overhead");
  Json.add("requests", Requests.size());
  Json.add("uninstrumented_programs_per_sec", PlainPerSec);
  Json.add("instrumented_programs_per_sec", InstrPerSec);
  Json.add("traced_programs_per_sec", TracedPerSec);
  Json.add("histogram_overhead_fraction", Overhead);
  Json.add("trace_overhead_fraction", TraceOverhead);
  Json.write("telemetry");

  if (Overhead > MaxOverhead) {
    std::cerr << "\nFAIL: telemetry overhead " << Overhead * 100.0
              << "% exceeds the " << MaxOverhead * 100.0
              << "% bound (NV_TELEMETRY_MAX_OVERHEAD to adjust)\n";
    return 1;
  }
  std::cout << "\nok: histogram overhead " << Table::fmt(Overhead * 100.0, 2)
            << "% (bound " << Table::fmt(MaxOverhead * 100.0, 0) << "%)\n";
  return 0;
}
