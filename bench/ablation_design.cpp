//===- bench/ablation_design.cpp - Design-choice ablations -----------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Ablates two design choices the paper calls out:
//
//  1. §3.3 — embedding input: "for nested loops, feeding the loop body of
//     the most outer loop ... performed better than feeding the body of
//     the most inner loop only."
//  2. §3.4 — the compile-timeout penalty (-9): without it, the agent has
//     no incentive to avoid factor choices that blow up compile time.
//
//===----------------------------------------------------------------------===//

#include "embedding/Code2Vec.h"
#include "dataset/LoopGenerator.h"
#include "rl/PPO.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

namespace {

/// Trains a fresh agent on a nest-heavy dataset with the given env
/// ablations and reports the final reward mean and the greedy reward.
double runVariant(const std::string &Label, bool InnerOnly,
                  bool PenalizeTimeouts) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  Env.setInnerContextOnly(InnerOnly);
  Env.setTimeoutPenaltyEnabled(PenalizeTimeouts);

  // Nest-rich dataset so inner-vs-outer context matters.
  LoopGenerator Gen(7);
  int Added = 0;
  for (int I = 0; I < 150; ++I) {
    // Bias toward the nested templates (1 and 3) half of the time.
    GeneratedLoop L = (I % 2 == 0) ? Gen.generate(1 + 2 * (I % 4 == 0))
                                   : Gen.generate();
    Added += Env.addProgram(L.Name, L.Source);
  }

  RNG Rng(42);
  Code2VecConfig EmbConfig;
  Code2Vec Embedder(EmbConfig, Rng);
  const TargetInfo &TI = Env.compiler().target();
  Policy Pol(ActionSpaceKind::Discrete, Embedder.codeDim(), {64, 64},
             static_cast<int>(TI.vfActions().size()),
             static_cast<int>(TI.ifActions().size()), Rng);
  PPOConfig Config;
  Config.BatchSize = 256;
  Config.MiniBatchSize = 64;
  Config.LearningRate = 2e-3;
  Config.EntropyCoef = 0.05;
  PPORunner Runner(Env, Embedder, Pol, Config, 42);
  TrainStats Stats = Runner.train(10000);

  // Greedy evaluation (with the timeout penalty active, so variants are
  // scored on the same yardstick).
  Env.setTimeoutPenaltyEnabled(true);
  double Total = 0.0;
  for (size_t I = 0; I < Env.size(); ++I)
    Total += Env.step(I, Runner.predictSample(I));
  const double Greedy = Total / static_cast<double>(Env.size());

  std::cout << Label << ": final reward mean "
            << Table::fmt(Stats.FinalRewardMean, 3) << ", greedy reward "
            << Table::fmt(Greedy, 3) << "\n";
  return Greedy;
}

} // namespace

int main() {
  std::cout << "=== Ablation: embedding context (outer vs inner loop body, "
               "S3.3) ===\n";
  const double Outer = runVariant("outer-loop context (paper)", false, true);
  const double Inner = runVariant("inner-loop context only ", true, true);
  std::cout << "outer >= inner: " << (Outer >= Inner ? "yes" : "NO")
            << " (paper: outer performs better)\n\n";

  std::cout << "=== Ablation: compile-timeout penalty (S3.4) ===\n";
  const double With = runVariant("with -9 timeout penalty  ", false, true);
  const double Without = runVariant("without timeout penalty  ", false,
                                    false);
  std::cout << "penalty helps (>=): " << (With >= Without ? "yes" : "NO")
            << " (paper: the penalty teaches the agent not to "
               "over-vectorize)\n";
  return 0;
}
