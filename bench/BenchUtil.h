//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the figure-reproduction benches: a tuned training
/// configuration (the paper's 64x64 FCNN and discrete action space, with
/// learning-rate/batch scaled to this reproduction's much smaller compute
/// budget — see EXPERIMENTS.md) and a standard synthetic training set.
///
//===----------------------------------------------------------------------===//

#ifndef NV_BENCH_BENCHUTIL_H
#define NV_BENCH_BENCHUTIL_H

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace nv {

/// Training configuration tuned for bench-scale budgets (minutes, not the
/// paper's cluster-hours): smaller batches with more SGD updates and a
/// larger Adam step.
inline NeuroVectorizerConfig benchConfig() {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  Config.PPO.EntropyCoef = 0.05;
  return Config;
}

/// Builds a framework instance preloaded with \p NumPrograms synthetic
/// training loops (§3.2 generator).
inline std::unique_ptr<NeuroVectorizer>
makeTrainedVectorizer(int NumPrograms, long long TrainSteps,
                      uint64_t Seed = 42,
                      NeuroVectorizerConfig Config = benchConfig()) {
  Config.Seed = Seed;
  auto NV = std::make_unique<NeuroVectorizer>(Config);
  LoopGenerator Gen(Seed);
  for (const GeneratedLoop &L : Gen.generateMany(NumPrograms))
    NV->addTrainingProgram(L.Name, L.Source);
  if (TrainSteps > 0)
    NV->train(TrainSteps);
  return NV;
}

/// Flat JSON metric emitter for the perf trajectory: each bench writes a
/// BENCH_<name>.json of {"bench": ..., "meta": {...}, "metrics":
/// {key: number, ...}} that CI uploads as an artifact, so throughput
/// history is diffable across commits without parsing table output. The
/// meta block records where the numbers came from — git sha, compiler,
/// build type, hardware thread count — and is ignored by the comparison
/// gate (tools/bench_compare.py reads only "metrics").
class BenchJson {
public:
  explicit BenchJson(std::string Bench) : Bench(std::move(Bench)) {}

  void add(const std::string &Key, double Value) {
    Metrics.emplace_back(Key, Value);
  }

  /// The provenance block stamped into every bench JSON.
  static std::string metaJson() {
#ifdef NV_GIT_SHA
    const char *GitSha = NV_GIT_SHA;
#else
    const char *GitSha = "unknown";
#endif
#ifdef NDEBUG
    const char *BuildType = "Release";
#else
    const char *BuildType = "Debug";
#endif
    std::ostringstream OS;
    OS << "{\"git_sha\": \"" << GitSha << "\", \"compiler\": \""
       << __VERSION__ << "\", \"build_type\": \"" << BuildType
       << "\", \"hardware_threads\": "
       << std::thread::hardware_concurrency() << "}";
    return OS.str();
  }

  std::string str() const {
    std::ostringstream OS;
    OS << "{\"bench\": \"" << Bench << "\", \"meta\": " << metaJson()
       << ", \"metrics\": {";
    for (size_t I = 0; I < Metrics.size(); ++I) {
      if (I)
        OS << ", ";
      OS << "\"" << Metrics[I].first << "\": ";
      const double V = Metrics[I].second;
      // Large counts as integers, rates with fixed precision.
      if (V == static_cast<long long>(V))
        OS << static_cast<long long>(V);
      else {
        OS.precision(4);
        OS << std::fixed << V;
        OS.unsetf(std::ios::fixed);
      }
    }
    OS << "}}";
    return OS.str();
  }

  /// Writes BENCH_<suffix>.json in the working directory and echoes the
  /// path; returns false on I/O failure (reported, not fatal — timing
  /// files must never fail a correctness-gated bench).
  bool write(const std::string &Suffix) const {
    const std::string Path = "BENCH_" + Suffix + ".json";
    std::ofstream Out(Path, std::ios::trunc);
    Out << str() << "\n";
    if (!Out) {
      std::cerr << "warning: could not write " << Path << "\n";
      return false;
    }
    std::cout << "wrote " << Path << "\n";
    return true;
  }

private:
  std::string Bench;
  std::vector<std::pair<std::string, double>> Metrics;
};

} // namespace nv

#endif // NV_BENCH_BENCHUTIL_H
