//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the figure-reproduction benches: a tuned training
/// configuration (the paper's 64x64 FCNN and discrete action space, with
/// learning-rate/batch scaled to this reproduction's much smaller compute
/// budget — see EXPERIMENTS.md) and a standard synthetic training set.
///
//===----------------------------------------------------------------------===//

#ifndef NV_BENCH_BENCHUTIL_H
#define NV_BENCH_BENCHUTIL_H

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"

#include <memory>

namespace nv {

/// Training configuration tuned for bench-scale budgets (minutes, not the
/// paper's cluster-hours): smaller batches with more SGD updates and a
/// larger Adam step.
inline NeuroVectorizerConfig benchConfig() {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  Config.PPO.EntropyCoef = 0.05;
  return Config;
}

/// Builds a framework instance preloaded with \p NumPrograms synthetic
/// training loops (§3.2 generator).
inline std::unique_ptr<NeuroVectorizer>
makeTrainedVectorizer(int NumPrograms, long long TrainSteps,
                      uint64_t Seed = 42,
                      NeuroVectorizerConfig Config = benchConfig()) {
  Config.Seed = Seed;
  auto NV = std::make_unique<NeuroVectorizer>(Config);
  LoopGenerator Gen(Seed);
  for (const GeneratedLoop &L : Gen.generateMany(NumPrograms))
    NV->addTrainingProgram(L.Name, L.Source);
  if (TrainSteps > 0)
    NV->train(TrainSteps);
  return NV;
}

} // namespace nv

#endif // NV_BENCH_BENCHUTIL_H
