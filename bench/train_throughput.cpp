//===- bench/train_throughput.cpp - Rollout collection throughput ---------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Measures how fast the training subsystem fills PPO batches (transitions
// per second) as rollout workers are added, over a >= 256-program
// synthetic training set:
//
//   - serial            PPORunner::collectBatch(), the pre-train/ path;
//   - workers, 1..8     train/RolloutWorkers with replica models.
//
// The 1-worker pool carries the replica-sync and episode-planning overhead
// without any parallelism, so "workers, 1" vs "serial" isolates the
// subsystem's fixed cost and "workers, N" vs "workers, 1" its scaling.
// A determinism guard re-collects the 4-worker batch with 1 worker and
// requires bit-identical transitions (the Trainer's reproducibility
// contract).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "train/RolloutWorkers.h"

#include <chrono>
#include <iostream>
#include <thread>

using namespace nv;

namespace {

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  constexpr int NumPrograms = 256;  // Acceptance floor.
  constexpr int BatchSize = 4000;   // The paper's train_batch_size.
  constexpr int Repeats = 3;

  std::cout << "=== train: parallel rollout collection throughput ===\n\n";

  NeuroVectorizerConfig Config = benchConfig();
  Config.PPO.BatchSize = BatchSize;
  Config.PPO.MiniBatchSize = 128;
  Config.Seed = 42;
  NeuroVectorizer NV(Config);
  LoopGenerator Gen(42);
  while (static_cast<int>(NV.env().size()) < NumPrograms) {
    GeneratedLoop L = Gen.generate();
    NV.addTrainingProgram(L.Name, L.Source);
  }
  const unsigned Cores = std::thread::hardware_concurrency();
  std::cout << "programs: " << NV.env().size()
            << "   batch: " << BatchSize << " transitions x " << Repeats
            << " repeats   cores: " << Cores << "\n";
  if (Cores < 2)
    std::cout << "note: single-core host — worker scaling cannot show "
                 "wall-clock speedup here\n";
  std::cout << "\n";

  Table T({"collector", "ms/batch", "transitions/s", "speedup"});
  BenchJson Json("train_throughput");
  Json.add("programs", NV.env().size());
  Json.add("batch_size", BatchSize);

  // --- Reference: the serial collector ------------------------------------
  const auto SerialStart = std::chrono::steady_clock::now();
  size_t SerialCount = 0;
  for (int R = 0; R < Repeats; ++R)
    SerialCount += NV.runner().collectBatch().size();
  const double SerialMs = millisSince(SerialStart) / Repeats;
  T.addRow({"serial collectBatch", Table::fmt(SerialMs),
            Table::fmt(SerialCount / Repeats * 1000.0 / SerialMs, 0),
            Table::fmt(1.0) + "x"});
  Json.add("serial_transitions_per_sec",
           SerialCount / Repeats * 1000.0 / SerialMs);
  Json.add("serial_batch_micros", SerialMs * 1000.0);

  // --- Worker pools --------------------------------------------------------
  const RolloutModelSpec Spec = NV.rolloutSpec();
  double OneWorkerMs = 0.0, FourWorkerMs = 0.0;
  for (int Workers : {1, 2, 4, 8}) {
    RolloutWorkers Pool(NV.env(), Spec, Workers);
    RolloutBuffer Buffer;
    // Warm-up (first sync touches cold replica memory).
    Pool.collect(NV.embedder(), NV.policy(), RNG(7), NV.env().size(),
                 BatchSize, Buffer);
    const auto Start = std::chrono::steady_clock::now();
    size_t Count = 0;
    for (int R = 0; R < Repeats; ++R) {
      Pool.collect(NV.embedder(), NV.policy(), RNG(100 + R),
                   NV.env().size(), BatchSize, Buffer);
      Count += Buffer.size();
    }
    const double Ms = millisSince(Start) / Repeats;
    if (Workers == 1)
      OneWorkerMs = Ms;
    if (Workers == 4)
      FourWorkerMs = Ms;
    T.addRow({"workers, " + std::to_string(Workers), Table::fmt(Ms),
              Table::fmt(Count / Repeats * 1000.0 / Ms, 0),
              Table::fmt(SerialMs / Ms) + "x"});
    Json.add("workers_" + std::to_string(Workers) + "_transitions_per_sec",
             Count / Repeats * 1000.0 / Ms);
    Json.add("workers_" + std::to_string(Workers) + "_batch_micros",
             Ms * 1000.0);
  }

  T.print(std::cout);
  std::cout << "\n4-worker fill rate vs 1-worker: "
            << Table::fmt(OneWorkerMs / FourWorkerMs) << "x\n";
  std::cout << "4-worker fill rate vs serial:   "
            << Table::fmt(SerialMs / FourWorkerMs) << "x\n";

  // --- Determinism guard ---------------------------------------------------
  RolloutWorkers P1(NV.env(), Spec, 1), P4(NV.env(), Spec, 4);
  RolloutBuffer B1, B4;
  P1.collect(NV.embedder(), NV.policy(), RNG(9), NV.env().size(), BatchSize,
             B1);
  P4.collect(NV.embedder(), NV.policy(), RNG(9), NV.env().size(), BatchSize,
             B4);
  if (B1.size() != B4.size()) {
    std::cerr << "DETERMINISM MISMATCH: batch sizes differ\n";
    return 1;
  }
  for (size_t I = 0; I < B1.size(); ++I) {
    const Transition &A = B1.Transitions[I];
    const Transition &B = B4.Transitions[I];
    if (A.SampleIdx != B.SampleIdx || A.Reward != B.Reward ||
        A.Action.LogProb != B.Action.LogProb) {
      std::cerr << "DETERMINISM MISMATCH at transition " << I << "\n";
      return 1;
    }
  }
  std::cout << "determinism guard: 1-worker and 4-worker batches are "
               "bit-identical\n";
  Json.add("determinism_guard_ok", 1);
  Json.write("train");
  // Exit status reflects correctness only; timing is reported, not gated,
  // so contended CI runners cannot flake this bench.
  return 0;
}
